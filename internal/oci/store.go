package oci

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"comtainer/internal/digest"
	"comtainer/internal/fsim"
	"comtainer/internal/tarfs"
)

// ErrBlobNotFound reports a missing blob.
var ErrBlobNotFound = errors.New("oci: blob not found")

// Store is a thread-safe content-addressed blob store.
type Store struct {
	mu    sync.RWMutex
	blobs map[digest.Digest][]byte
}

// NewStore returns an empty blob store.
func NewStore() *Store {
	return &Store{blobs: make(map[digest.Digest][]byte)}
}

// Put stores content and returns its digest. Storing the same content twice
// is a no-op.
func (s *Store) Put(content []byte) digest.Digest {
	d := digest.FromBytes(content)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[d]; !ok {
		s.blobs[d] = append([]byte(nil), content...)
	}
	return d
}

// PutVerified stores content that must hash to want.
func (s *Store) PutVerified(content []byte, want digest.Digest) error {
	if got := digest.FromBytes(content); got != want {
		return fmt.Errorf("oci: digest mismatch: content is %s, want %s", got, want)
	}
	s.Put(content)
	return nil
}

// Get returns the content of the blob with digest d.
func (s *Store) Get(d digest.Digest) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blobs[d]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrBlobNotFound, d)
	}
	return b, nil
}

// Open returns a streaming reader over blob d plus its size — the
// distrib.BlobSource read side. The returned reader sees a stable
// snapshot of the blob.
func (s *Store) Open(d digest.Digest) (io.ReadCloser, int64, error) {
	b, err := s.Get(d)
	if err != nil {
		return nil, 0, err
	}
	return io.NopCloser(bytes.NewReader(b)), int64(len(b)), nil
}

// Ingest consumes r into the store — the distrib.BlobSink write side.
// If want is non-empty the content must hash to it.
func (s *Store) Ingest(r io.Reader, want digest.Digest) (digest.Digest, int64, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return "", 0, fmt.Errorf("oci: ingesting blob: %w", err)
	}
	if want != "" {
		if err := s.PutVerified(b, want); err != nil {
			return "", 0, err
		}
		return want, int64(len(b)), nil
	}
	return s.Put(b), int64(len(b)), nil
}

// Delete removes blob d. Deleting an absent blob is not an error.
func (s *Store) Delete(d digest.Digest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blobs, d)
	return nil
}

// Has reports whether the store holds blob d.
func (s *Store) Has(d digest.Digest) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.blobs[d]
	return ok
}

// Len returns the number of stored blobs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}

// Digests returns the sorted digests of every stored blob.
func (s *Store) Digests() []digest.Digest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]digest.Digest, 0, len(s.blobs))
	for d := range s.blobs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalSize returns the combined size of all blobs in bytes.
func (s *Store) TotalSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, b := range s.blobs {
		n += int64(len(b))
	}
	return n
}

// CopyBlob copies blob d from src into s.
func (s *Store) CopyBlob(src *Store, d digest.Digest) error {
	b, err := src.Get(d)
	if err != nil {
		return err
	}
	s.Put(b)
	return nil
}

// CopyImage copies the manifest named by desc and all blobs it references
// (config + layers) from src into s.
func (s *Store) CopyImage(src *Store, desc Descriptor) error {
	m, err := LoadManifest(src, desc.Digest)
	if err != nil {
		return err
	}
	if err := s.CopyBlob(src, desc.Digest); err != nil {
		return err
	}
	if err := s.CopyBlob(src, m.Config.Digest); err != nil {
		return fmt.Errorf("oci: copying config: %w", err)
	}
	for _, l := range m.Layers {
		if err := s.CopyBlob(src, l.Digest); err != nil {
			return fmt.Errorf("oci: copying layer: %w", err)
		}
	}
	return nil
}

// GC removes every blob not reachable from the given manifest
// descriptors (via their configs and layers), returning the number of
// blobs dropped. Registries and layout saves use it to prune superseded
// intermediates.
func (s *Store) GC(roots []Descriptor) (int, error) {
	reachable := map[digest.Digest]bool{}
	for _, root := range roots {
		reachable[root.Digest] = true
		m, err := LoadManifest(s, root.Digest)
		if err != nil {
			return 0, fmt.Errorf("oci: gc root %s: %w", root.Digest.Short(), err)
		}
		reachable[m.Config.Digest] = true
		for _, l := range m.Layers {
			reachable[l.Digest] = true
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for d := range s.blobs {
		if !reachable[d] {
			delete(s.blobs, d)
			dropped++
		}
	}
	return dropped, nil
}

// PutJSON marshals v canonically, stores it, and returns a descriptor with
// the given media type.
func PutJSON(s *Store, v any, mediaType string) (Descriptor, error) {
	b, err := canonicalJSON(v)
	if err != nil {
		return Descriptor{}, err
	}
	d := s.Put(b)
	return Descriptor{MediaType: mediaType, Digest: d, Size: int64(len(b))}, nil
}

// GetJSON loads blob d from s and unmarshals it into v.
func GetJSON(s *Store, d digest.Digest, v any) error {
	b, err := s.Get(d)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("oci: decoding blob %s into %T: %w", d.Short(), v, err)
	}
	return nil
}

// LoadManifest reads and decodes the manifest blob d.
func LoadManifest(s *Store, d digest.Digest) (*Manifest, error) {
	var m Manifest
	if err := GetJSON(s, d, &m); err != nil {
		return nil, fmt.Errorf("oci: loading manifest: %w", err)
	}
	return &m, nil
}

// LoadConfig reads and decodes the image config blob d.
func LoadConfig(s *Store, d digest.Digest) (*ImageConfig, error) {
	var c ImageConfig
	if err := GetJSON(s, d, &c); err != nil {
		return nil, fmt.Errorf("oci: loading config: %w", err)
	}
	return &c, nil
}

// Image is a loaded image: its manifest, config, and the store holding its
// blobs.
type Image struct {
	Store    *Store
	Desc     Descriptor
	Manifest *Manifest
	Config   *ImageConfig
}

// LoadImage loads the image whose manifest descriptor is desc.
func LoadImage(s *Store, desc Descriptor) (*Image, error) {
	m, err := LoadManifest(s, desc.Digest)
	if err != nil {
		return nil, err
	}
	c, err := LoadConfig(s, m.Config.Digest)
	if err != nil {
		return nil, err
	}
	if len(m.Layers) != len(c.RootFS.DiffIDs) {
		return nil, fmt.Errorf("oci: manifest has %d layers but config lists %d diffIDs",
			len(m.Layers), len(c.RootFS.DiffIDs))
	}
	return &Image{Store: s, Desc: desc, Manifest: m, Config: c}, nil
}

// Layer decodes layer index i into a file system.
func (img *Image) Layer(i int) (*fsim.FS, error) {
	if i < 0 || i >= len(img.Manifest.Layers) {
		return nil, fmt.Errorf("oci: layer index %d out of range [0,%d)", i, len(img.Manifest.Layers))
	}
	desc := img.Manifest.Layers[i]
	raw, err := img.Store.Get(desc.Digest)
	if err != nil {
		return nil, err
	}
	var fs *fsim.FS
	switch desc.MediaType {
	case MediaTypeLayer:
		fs, err = tarfs.Unmarshal(raw)
	case MediaTypeLayerGzip:
		fs, err = tarfs.UnmarshalGzip(raw)
	default:
		return nil, fmt.Errorf("oci: unsupported layer media type %q", desc.MediaType)
	}
	if err != nil {
		return nil, fmt.Errorf("oci: decoding layer %d: %w", i, err)
	}
	// Verify diffID (digest of the uncompressed tar).
	want := img.Config.RootFS.DiffIDs[i]
	uncompressed, err := tarfs.Marshal(fs)
	if err != nil {
		return nil, err
	}
	if got := digest.FromBytes(uncompressed); desc.MediaType == MediaTypeLayer && got != want {
		return nil, fmt.Errorf("oci: layer %d diffID mismatch: got %s, want %s", i, got.Short(), want.Short())
	}
	return fs, nil
}

// Layers decodes every layer in order.
func (img *Image) Layers() ([]*fsim.FS, error) {
	out := make([]*fsim.FS, len(img.Manifest.Layers))
	for i := range img.Manifest.Layers {
		fs, err := img.Layer(i)
		if err != nil {
			return nil, err
		}
		out[i] = fs
	}
	return out, nil
}

// Flatten applies all layers in order and returns the final file system
// state — the POSIX-simulator computation the paper describes.
func (img *Image) Flatten() (*fsim.FS, error) {
	layers, err := img.Layers()
	if err != nil {
		return nil, err
	}
	return fsim.ApplyAll(layers), nil
}

// ChainID returns the chain ID of the image's full layer stack.
func (img *Image) ChainID() digest.Digest {
	ids := ChainIDs(img.Config.RootFS.DiffIDs)
	if len(ids) == 0 {
		return digest.FromString("")
	}
	return ids[len(ids)-1]
}

// WriteImage encodes layers, writes config and manifest into s, and returns
// the manifest descriptor. The config's RootFS is overwritten with the
// computed diffIDs.
func WriteImage(s *Store, cfg ImageConfig, layers []*fsim.FS) (Descriptor, error) {
	layerDescs := make([]Descriptor, 0, len(layers))
	diffIDs := make([]digest.Digest, 0, len(layers))
	for i, l := range layers {
		raw, err := tarfs.Marshal(l)
		if err != nil {
			return Descriptor{}, fmt.Errorf("oci: encoding layer %d: %w", i, err)
		}
		d := s.Put(raw)
		layerDescs = append(layerDescs, Descriptor{
			MediaType: MediaTypeLayer,
			Digest:    d,
			Size:      int64(len(raw)),
		})
		diffIDs = append(diffIDs, d)
	}
	cfg.RootFS = RootFS{Type: "layers", DiffIDs: diffIDs}
	cfgDesc, err := PutJSON(s, cfg, MediaTypeConfig)
	if err != nil {
		return Descriptor{}, err
	}
	m := Manifest{
		SchemaVersion: 2,
		MediaType:     MediaTypeManifest,
		Config:        cfgDesc,
		Layers:        layerDescs,
	}
	return PutJSON(s, m, MediaTypeManifest)
}

// WriteManifestList stores a multi-architecture image index referencing
// per-platform manifests — the publishing format of the cross-ISA
// container ecosystem the paper's §5.5 sketches. Every entry must carry a
// Platform.
func WriteManifestList(s *Store, entries []Descriptor) (Descriptor, error) {
	if len(entries) == 0 {
		return Descriptor{}, fmt.Errorf("oci: manifest list needs at least one entry")
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.Platform == nil || e.Platform.Architecture == "" {
			return Descriptor{}, fmt.Errorf("oci: manifest-list entry %s has no platform", e.Digest.Short())
		}
		if seen[e.Platform.Architecture] {
			return Descriptor{}, fmt.Errorf("oci: duplicate platform %s in manifest list", e.Platform.Architecture)
		}
		seen[e.Platform.Architecture] = true
		if !s.Has(e.Digest) {
			return Descriptor{}, fmt.Errorf("oci: manifest %s not in store", e.Digest.Short())
		}
	}
	idx := Index{SchemaVersion: 2, MediaType: MediaTypeIndex, Manifests: entries}
	return PutJSON(s, idx, MediaTypeIndex)
}

// ResolvePlatform picks the manifest for an architecture out of a
// manifest list.
func ResolvePlatform(s *Store, list Descriptor, arch string) (Descriptor, error) {
	var idx Index
	if err := GetJSON(s, list.Digest, &idx); err != nil {
		return Descriptor{}, err
	}
	var archs []string
	for _, m := range idx.Manifests {
		if m.Platform == nil {
			continue
		}
		if m.Platform.Architecture == arch {
			return m, nil
		}
		archs = append(archs, m.Platform.Architecture)
	}
	return Descriptor{}, fmt.Errorf("oci: no manifest for architecture %s (have %v)", arch, archs)
}

// AppendLayer derives a new image from base by appending one layer. All of
// base's blobs are shared untouched; only a new layer blob, config and
// manifest are written. The history comment and layer role annotation
// identify the addition. Returns the new manifest descriptor.
func AppendLayer(s *Store, base Descriptor, layer *fsim.FS, role, comment string) (Descriptor, error) {
	img, err := LoadImage(s, base)
	if err != nil {
		return Descriptor{}, fmt.Errorf("oci: loading base image: %w", err)
	}
	raw, err := tarfs.Marshal(layer)
	if err != nil {
		return Descriptor{}, fmt.Errorf("oci: encoding appended layer: %w", err)
	}
	ld := s.Put(raw)

	cfg := *img.Config
	cfg.RootFS.DiffIDs = append(append([]digest.Digest(nil), cfg.RootFS.DiffIDs...), ld)
	cfg.History = append(append([]HistoryEntry(nil), cfg.History...), HistoryEntry{
		CreatedBy: "comtainer",
		Comment:   comment,
	})
	cfgDesc, err := PutJSON(s, cfg, MediaTypeConfig)
	if err != nil {
		return Descriptor{}, err
	}

	layers := append(append([]Descriptor(nil), img.Manifest.Layers...), Descriptor{
		MediaType:   MediaTypeLayer,
		Digest:      ld,
		Size:        int64(len(raw)),
		Annotations: map[string]string{AnnotationLayerRole: role},
	})
	m := Manifest{
		SchemaVersion: 2,
		MediaType:     MediaTypeManifest,
		Config:        cfgDesc,
		Layers:        layers,
	}
	return PutJSON(s, m, MediaTypeManifest)
}
