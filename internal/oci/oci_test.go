package oci

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"comtainer/internal/digest"
	"comtainer/internal/fsim"
	"comtainer/internal/tarfs"
)

func baseLayer() *fsim.FS {
	f := fsim.New()
	f.WriteFile("/bin/sh", []byte("#!shell"), 0o755)
	f.WriteFile("/etc/os-release", []byte("ID=ubuntu\nVERSION_ID=24.04\n"), 0o644)
	return f
}

func appLayer() *fsim.FS {
	f := fsim.New()
	f.WriteFile("/app/lulesh", []byte("ELF lulesh"), 0o755)
	return f
}

func testConfig() ImageConfig {
	return ImageConfig{
		Architecture: "amd64",
		OS:           "linux",
		Config: ExecConfig{
			Env:        []string{"PATH=/usr/bin:/bin"},
			Entrypoint: []string{"/app/lulesh"},
		},
	}
}

func TestWriteAndLoadImage(t *testing.T) {
	s := NewStore()
	desc, err := WriteImage(s, testConfig(), []*fsim.FS{baseLayer(), appLayer()})
	if err != nil {
		t.Fatal(err)
	}
	if desc.MediaType != MediaTypeManifest {
		t.Errorf("MediaType = %q", desc.MediaType)
	}
	img, err := LoadImage(s, desc)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Manifest.Layers) != 2 {
		t.Fatalf("layers = %d", len(img.Manifest.Layers))
	}
	if img.Config.Architecture != "amd64" {
		t.Errorf("arch = %q", img.Config.Architecture)
	}
	flat, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if !flat.Exists("/bin/sh") || !flat.Exists("/app/lulesh") {
		t.Errorf("flattened FS missing files: %v", flat.Paths())
	}
}

func TestLayerRoundTrip(t *testing.T) {
	s := NewStore()
	orig := appLayer()
	desc, err := WriteImage(s, testConfig(), []*fsim.FS{orig})
	if err != nil {
		t.Fatal(err)
	}
	img, err := LoadImage(s, desc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := img.Layer(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(orig) {
		t.Error("layer round trip mismatch")
	}
	if _, err := img.Layer(5); err == nil {
		t.Error("out-of-range layer index accepted")
	}
}

func TestStoreDedup(t *testing.T) {
	s := NewStore()
	d1 := s.Put([]byte("same"))
	d2 := s.Put([]byte("same"))
	if d1 != d2 {
		t.Error("identical content got different digests")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestStoreGetMissing(t *testing.T) {
	s := NewStore()
	_, err := s.Get(digest.FromString("nope"))
	if !errors.Is(err, ErrBlobNotFound) {
		t.Errorf("err = %v, want ErrBlobNotFound", err)
	}
}

func TestPutVerified(t *testing.T) {
	s := NewStore()
	content := []byte("payload")
	if err := s.PutVerified(content, digest.FromBytes(content)); err != nil {
		t.Errorf("PutVerified rejected valid content: %v", err)
	}
	if err := s.PutVerified(content, digest.FromString("other")); err == nil {
		t.Error("PutVerified accepted mismatched digest")
	}
}

func TestChainIDs(t *testing.T) {
	d1 := digest.FromString("layer1")
	d2 := digest.FromString("layer2")
	chains := ChainIDs([]digest.Digest{d1, d2})
	if chains[0] != d1 {
		t.Error("ChainID(L0) != DiffID(L0)")
	}
	want := digest.FromString(string(d1) + " " + string(d2))
	if chains[1] != want {
		t.Error("ChainID recursion incorrect")
	}
	if len(ChainIDs(nil)) != 0 {
		t.Error("ChainIDs(nil) not empty")
	}
}

func TestAppendLayerSharesBlobs(t *testing.T) {
	s := NewStore()
	base, err := WriteImage(s, testConfig(), []*fsim.FS{baseLayer(), appLayer()})
	if err != nil {
		t.Fatal(err)
	}
	baseManifestBytes, err := s.Get(base.Digest)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]byte(nil), baseManifestBytes...)

	cache := fsim.New()
	cache.WriteFile("/.comtainer/cache/models.json", []byte(`{"v":1}`), 0o644)
	ext, err := AppendLayer(s, base, cache, "comtainer.cache", "coMtainer-build cache layer")
	if err != nil {
		t.Fatal(err)
	}
	if ext.Digest == base.Digest {
		t.Error("extended manifest digest equals base digest")
	}
	// The original manifest blob is untouched.
	after, err := s.Get(base.Digest)
	if err != nil {
		t.Fatal("original manifest blob disappeared:", err)
	}
	if string(before) != string(after) {
		t.Error("extending the image mutated the original manifest blob")
	}
	extImg, err := LoadImage(s, ext)
	if err != nil {
		t.Fatal(err)
	}
	baseImg, err := LoadImage(s, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(extImg.Manifest.Layers) != len(baseImg.Manifest.Layers)+1 {
		t.Errorf("extended image has %d layers, want %d",
			len(extImg.Manifest.Layers), len(baseImg.Manifest.Layers)+1)
	}
	// First layers are bitwise-shared.
	for i := range baseImg.Manifest.Layers {
		if extImg.Manifest.Layers[i].Digest != baseImg.Manifest.Layers[i].Digest {
			t.Errorf("layer %d not shared", i)
		}
	}
	role := extImg.Manifest.Layers[len(extImg.Manifest.Layers)-1].Annotations[AnnotationLayerRole]
	if role != "comtainer.cache" {
		t.Errorf("layer role = %q", role)
	}
	flat, err := extImg.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if !flat.Exists("/.comtainer/cache/models.json") || !flat.Exists("/app/lulesh") {
		t.Error("extended image flatten missing files")
	}
}

func TestRepositoryTagResolve(t *testing.T) {
	r := NewRepository()
	desc, err := WriteImage(r.Store, testConfig(), []*fsim.FS{baseLayer()})
	if err != nil {
		t.Fatal(err)
	}
	r.Tag("lulesh.dist", desc)
	got, err := r.Resolve("lulesh.dist")
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != desc.Digest {
		t.Error("Resolve returned wrong descriptor")
	}
	if _, err := r.Resolve("missing"); err == nil {
		t.Error("Resolve(missing) succeeded")
	}
	// Re-tagging replaces.
	desc2, _ := WriteImage(r.Store, testConfig(), []*fsim.FS{appLayer()})
	r.Tag("lulesh.dist", desc2)
	got, _ = r.Resolve("lulesh.dist")
	if got.Digest != desc2.Digest {
		t.Error("re-tag did not replace")
	}
	if n := len(r.Index.Manifests); n != 1 {
		t.Errorf("index has %d manifests, want 1", n)
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "img.oci")
	r := NewRepository()
	desc, err := WriteImage(r.Store, testConfig(), []*fsim.FS{baseLayer(), appLayer()})
	if err != nil {
		t.Fatal(err)
	}
	r.Tag("xxx.dist", desc)
	if err := r.SaveLayout(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLayout(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Index.Tags(), []string{"xxx.dist"}) {
		t.Errorf("tags = %v", back.Index.Tags())
	}
	img, err := back.LoadByTag("xxx.dist")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if !flat.Exists("/app/lulesh") {
		t.Error("layout round trip lost content")
	}
}

func TestLoadLayoutRejectsCorruptBlob(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "img.oci")
	r := NewRepository()
	desc, err := WriteImage(r.Store, testConfig(), []*fsim.FS{baseLayer()})
	if err != nil {
		t.Fatal(err)
	}
	r.Tag("x", desc)
	if err := r.SaveLayout(dir); err != nil {
		t.Fatal(err)
	}
	// Flip bytes in one blob on disk.
	blobDir := filepath.Join(dir, "blobs", "sha256")
	entries, err := os.ReadDir(blobDir)
	if err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(blobDir, entries[0].Name())
	if err := os.WriteFile(victim, []byte("tampered content"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLayout(dir); err == nil {
		t.Error("layout with a corrupt blob loaded")
	}
}

func TestLayerDiffIDMismatchDetected(t *testing.T) {
	s := NewStore()
	desc, err := WriteImage(s, testConfig(), []*fsim.FS{baseLayer()})
	if err != nil {
		t.Fatal(err)
	}
	img, err := LoadImage(s, desc)
	if err != nil {
		t.Fatal(err)
	}
	// Swap the layer reference to different (valid) tar content while
	// keeping the config's diffID: the verification must catch it.
	other := fsim.New()
	other.WriteFile("/evil", []byte("swap"), 0o644)
	raw, err := tarfsMarshal(other)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Put(raw)
	m := *img.Manifest
	m.Layers = append([]Descriptor(nil), m.Layers...)
	m.Layers[0] = Descriptor{MediaType: MediaTypeLayer, Digest: d, Size: int64(len(raw))}
	tamperedDesc, err := PutJSON(s, m, MediaTypeManifest)
	if err != nil {
		t.Fatal(err)
	}
	tampered, err := LoadImage(s, tamperedDesc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tampered.Layer(0); err == nil {
		t.Error("diffID mismatch not detected")
	}
}

func TestLoadLayoutNotALayout(t *testing.T) {
	if _, err := LoadLayout(t.TempDir()); err == nil {
		t.Error("LoadLayout accepted an empty directory")
	}
}

func TestCopyImage(t *testing.T) {
	src := NewStore()
	desc, err := WriteImage(src, testConfig(), []*fsim.FS{baseLayer(), appLayer()})
	if err != nil {
		t.Fatal(err)
	}
	dst := NewStore()
	if err := dst.CopyImage(src, desc); err != nil {
		t.Fatal(err)
	}
	img, err := LoadImage(dst, desc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := img.Flatten(); err != nil {
		t.Fatal(err)
	}
}

func TestImageConfigJSONStability(t *testing.T) {
	s := NewStore()
	d1, err := PutJSON(s, testConfig(), MediaTypeConfig)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := PutJSON(s, testConfig(), MediaTypeConfig)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Digest != d2.Digest {
		t.Error("identical configs produced different digests")
	}
}

func TestPropertyStorePutGet(t *testing.T) {
	s := NewStore()
	f := func(b []byte) bool {
		d := s.Put(b)
		got, err := s.Get(d)
		return err == nil && string(got) == string(b) && d.Verify(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyChainIDPrefixStability(t *testing.T) {
	// Chain IDs of a prefix never change when layers are appended — this is
	// the property that makes AppendLayer non-destructive.
	f := func(seeds []int64) bool {
		if len(seeds) == 0 {
			return true
		}
		var diffIDs []digest.Digest
		for _, s := range seeds {
			diffIDs = append(diffIDs, digest.FromString(string(rune(s%1000))))
		}
		full := ChainIDs(diffIDs)
		prefix := ChainIDs(diffIDs[:len(diffIDs)-1])
		for i := range prefix {
			if prefix[i] != full[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// tarfsMarshal avoids an import cycle workaround in tests: oci tests may
// use tarfs directly.
func tarfsMarshal(f *fsim.FS) ([]byte, error) { return tarfs.Marshal(f) }
