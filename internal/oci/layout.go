package oci

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"comtainer/internal/digest"
	"comtainer/internal/faultinject"
)

// layoutMarker is the content of the oci-layout marker file.
const layoutMarker = `{"imageLayoutVersion": "1.0.0"}`

// Repository couples a blob store with a tagged index — the in-memory
// equivalent of an OCI layout directory. It is what registries serve and
// what the build tools operate on. Tagging and resolution are safe for
// concurrent use; direct Index access is not and belongs to loading and
// saving code only.
type Repository struct {
	Store *Store
	Index Index

	mu sync.RWMutex
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{
		Store: NewStore(),
		Index: Index{SchemaVersion: 2, MediaType: MediaTypeIndex},
	}
}

// Tag records desc under tag in the repository index.
func (r *Repository) Tag(tag string, desc Descriptor) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Index.SetTag(tag, desc)
}

// Resolve returns the manifest descriptor tagged tag.
func (r *Repository) Resolve(tag string) (Descriptor, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.Index.FindByTag(tag)
	if !ok {
		return Descriptor{}, fmt.Errorf("oci: tag %q not found (have %v)", tag, r.Index.Tags())
	}
	return d, nil
}

// LoadByTag loads the image tagged tag.
func (r *Repository) LoadByTag(tag string) (*Image, error) {
	desc, err := r.Resolve(tag)
	if err != nil {
		return nil, err
	}
	return LoadImage(r.Store, desc)
}

// PushImage copies the image named by desc from src into the repository
// and tags it.
func (r *Repository) PushImage(src *Store, desc Descriptor, tag string) error {
	if err := r.Store.CopyImage(src, desc); err != nil {
		return err
	}
	r.Tag(tag, desc)
	return nil
}

// writeFileAtomic commits data to path via a temp file in the same
// directory plus rename, so a crash mid-write never leaves a torn
// file at an addressable layout path.
func writeFileAtomic(fsys faultinject.FS, path string, data []byte, mode os.FileMode) error {
	tmp, err := fsys.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = fsys.Chmod(tmpName, mode)
	}
	if werr == nil {
		werr = fsys.Rename(tmpName, path)
	}
	if werr != nil {
		fsys.Remove(tmpName)
		return werr
	}
	return nil
}

// SaveLayout writes the repository as an OCI layout directory: an
// oci-layout marker, index.json, and blobs/sha256/<hex> files. Every
// file is committed atomically (temp + rename): blobs because they are
// content-addressed and must never exist torn, index.json because it
// is the root a reader trusts.
func (r *Repository) SaveLayout(dir string) error {
	return r.SaveLayoutFS(dir, faultinject.OS())
}

// SaveLayoutFS is SaveLayout writing through fsys — the hook chaos
// tests use to crash a save at an arbitrary write and verify the
// layout on disk is either absent or loadable, never torn. index.json
// is written last, so a reader only sees the index once every blob it
// references has committed.
func (r *Repository) SaveLayoutFS(dir string, fsys faultinject.FS) error {
	blobDir := filepath.Join(dir, "blobs", "sha256")
	if err := fsys.MkdirAll(blobDir, 0o755); err != nil {
		return fmt.Errorf("oci: creating layout dir: %w", err)
	}
	if err := writeFileAtomic(fsys, filepath.Join(dir, "oci-layout"), []byte(layoutMarker), 0o644); err != nil {
		return fmt.Errorf("oci: writing layout marker: %w", err)
	}
	for _, d := range r.Store.Digests() {
		b, err := r.Store.Get(d)
		if err != nil {
			return err
		}
		if err := writeFileAtomic(fsys, filepath.Join(blobDir, d.Hex()), b, 0o644); err != nil {
			return fmt.Errorf("oci: writing blob %s: %w", d.Short(), err)
		}
	}
	idx, err := json.MarshalIndent(r.Index, "", "  ")
	if err != nil {
		return fmt.Errorf("oci: encoding index: %w", err)
	}
	if err := writeFileAtomic(fsys, filepath.Join(dir, "index.json"), idx, 0o644); err != nil {
		return fmt.Errorf("oci: writing index.json: %w", err)
	}
	return nil
}

// LoadLayout reads an OCI layout directory into a repository.
func LoadLayout(dir string) (*Repository, error) {
	marker, err := os.ReadFile(filepath.Join(dir, "oci-layout"))
	if err != nil {
		return nil, fmt.Errorf("oci: %s is not an OCI layout: %w", dir, err)
	}
	var mv struct {
		ImageLayoutVersion string `json:"imageLayoutVersion"`
	}
	if err := json.Unmarshal(marker, &mv); err != nil || mv.ImageLayoutVersion == "" {
		return nil, fmt.Errorf("oci: %s has an invalid oci-layout marker", dir)
	}
	r := NewRepository()
	idxBytes, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		return nil, fmt.Errorf("oci: reading index.json: %w", err)
	}
	if err := json.Unmarshal(idxBytes, &r.Index); err != nil {
		return nil, fmt.Errorf("oci: decoding index.json: %w", err)
	}
	blobDir := filepath.Join(dir, "blobs", "sha256")
	entries, err := os.ReadDir(blobDir)
	if err != nil {
		if os.IsNotExist(err) {
			return r, nil
		}
		return nil, fmt.Errorf("oci: reading blob dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(blobDir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("oci: reading blob %s: %w", e.Name(), err)
		}
		want, err := digest.Parse("sha256:" + e.Name())
		if err != nil {
			return nil, fmt.Errorf("oci: blob file %q is not digest-named: %w", e.Name(), err)
		}
		if err := r.Store.PutVerified(b, want); err != nil {
			return nil, fmt.Errorf("oci: corrupt blob %s: %w", e.Name(), err)
		}
	}
	return r, nil
}
