package oci

import (
	"comtainer/internal/digest"
	"strings"
	"testing"

	"comtainer/internal/fsim"
)

func archImage(t *testing.T, s *Store, arch string) Descriptor {
	t.Helper()
	fs := fsim.New()
	fs.WriteFile("/app/demo", []byte("binary for "+arch), 0o755)
	desc, err := WriteImage(s, ImageConfig{Architecture: arch, OS: "linux"}, []*fsim.FS{fs})
	if err != nil {
		t.Fatal(err)
	}
	desc.Platform = &Platform{Architecture: arch, OS: "linux"}
	return desc
}

func TestManifestListRoundTrip(t *testing.T) {
	s := NewStore()
	amd := archImage(t, s, "amd64")
	arm := archImage(t, s, "arm64")
	list, err := WriteManifestList(s, []Descriptor{amd, arm})
	if err != nil {
		t.Fatal(err)
	}
	if list.MediaType != MediaTypeIndex {
		t.Errorf("MediaType = %q", list.MediaType)
	}
	got, err := ResolvePlatform(s, list, "arm64")
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != arm.Digest {
		t.Error("resolved wrong platform manifest")
	}
	img, err := LoadImage(s, got)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	data, _ := flat.ReadFile("/app/demo")
	if !strings.Contains(string(data), "arm64") {
		t.Errorf("content = %q", data)
	}
	if _, err := ResolvePlatform(s, list, "riscv64"); err == nil {
		t.Error("missing platform resolved")
	}
}

func TestManifestListValidation(t *testing.T) {
	s := NewStore()
	amd := archImage(t, s, "amd64")
	if _, err := WriteManifestList(s, nil); err == nil {
		t.Error("empty list accepted")
	}
	noPlat := amd
	noPlat.Platform = nil
	if _, err := WriteManifestList(s, []Descriptor{noPlat}); err == nil {
		t.Error("platform-less entry accepted")
	}
	if _, err := WriteManifestList(s, []Descriptor{amd, amd}); err == nil {
		t.Error("duplicate platform accepted")
	}
	ghost := amd
	ghost.Platform = &Platform{Architecture: "arm64", OS: "linux"}
	ghost.Digest = digest.Digest("sha256:" + strings.Repeat("0", 64))
	if _, err := WriteManifestList(s, []Descriptor{ghost}); err == nil {
		t.Error("dangling manifest accepted")
	}
}

func TestStoreGC(t *testing.T) {
	s := NewStore()
	keep := archImage(t, s, "amd64")
	// Orphan blobs: a stale manifest and loose content.
	stale := archImage(t, s, "arm64")
	s.Put([]byte("loose garbage"))
	before := s.Len()
	dropped, err := s.GC([]Descriptor{keep})
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 || s.Len() >= before {
		t.Errorf("GC dropped %d, store %d -> %d", dropped, before, s.Len())
	}
	// The kept image still fully loads.
	img, err := LoadImage(s, keep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := img.Flatten(); err != nil {
		t.Fatal(err)
	}
	// The stale manifest is gone.
	if s.Has(stale.Digest) {
		t.Error("stale manifest survived GC")
	}
	// GC with a dangling root errors.
	if _, err := s.GC([]Descriptor{stale}); err == nil {
		t.Error("GC with missing root succeeded")
	}
}
