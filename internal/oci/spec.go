// Package oci implements the subset of the OCI image specification that
// container build tools (and coMtainer) manipulate: content-addressed blob
// stores, layer/config/manifest/index documents, image layout directories,
// and the layer arithmetic (diffIDs, chainIDs) that makes images verifiable.
//
// coMtainer's central trick — "thanks to the layered nature of OCI images,
// the injection of additional data introduces no changes to the original
// image" (paper §4.5) — is realized here by AppendLayer, which produces a
// new manifest that shares every existing blob with the original image.
package oci

import (
	"encoding/json"
	"fmt"
	"sort"

	"comtainer/internal/digest"
)

// OCI media types used throughout.
const (
	MediaTypeManifest  = "application/vnd.oci.image.manifest.v1+json"
	MediaTypeConfig    = "application/vnd.oci.image.config.v1+json"
	MediaTypeIndex     = "application/vnd.oci.image.index.v1+json"
	MediaTypeLayer     = "application/vnd.oci.image.layer.v1.tar"
	MediaTypeLayerGzip = "application/vnd.oci.image.layer.v1.tar+gzip"
)

// Annotation keys.
const (
	// AnnotationRefName tags a manifest inside an index, mirroring
	// org.opencontainers.image.ref.name.
	AnnotationRefName = "org.opencontainers.image.ref.name"
	// AnnotationLayerRole marks what a layer holds; coMtainer sets it to
	// "comtainer.cache" / "comtainer.rebuild" on its injected layers.
	AnnotationLayerRole = "io.comtainer.layer.role"
)

// Platform describes the target of an image.
type Platform struct {
	Architecture string `json:"architecture"`
	OS           string `json:"os"`
}

// Descriptor references a blob by digest, with its media type and size.
type Descriptor struct {
	MediaType   string            `json:"mediaType"`
	Digest      digest.Digest     `json:"digest"`
	Size        int64             `json:"size"`
	Annotations map[string]string `json:"annotations,omitempty"`
	Platform    *Platform         `json:"platform,omitempty"`
}

// Manifest is an OCI image manifest document.
type Manifest struct {
	SchemaVersion int               `json:"schemaVersion"`
	MediaType     string            `json:"mediaType"`
	Config        Descriptor        `json:"config"`
	Layers        []Descriptor      `json:"layers"`
	Annotations   map[string]string `json:"annotations,omitempty"`
}

// HistoryEntry records one build step in an image config.
type HistoryEntry struct {
	Created    string `json:"created,omitempty"`
	CreatedBy  string `json:"created_by,omitempty"`
	Comment    string `json:"comment,omitempty"`
	EmptyLayer bool   `json:"empty_layer,omitempty"`
}

// RootFS lists the uncompressed layer digests (diffIDs) of an image.
type RootFS struct {
	Type    string          `json:"type"`
	DiffIDs []digest.Digest `json:"diff_ids"`
}

// ExecConfig is the runtime portion of an image config.
type ExecConfig struct {
	Env        []string          `json:"Env,omitempty"`
	Entrypoint []string          `json:"Entrypoint,omitempty"`
	Cmd        []string          `json:"Cmd,omitempty"`
	WorkingDir string            `json:"WorkingDir,omitempty"`
	Labels     map[string]string `json:"Labels,omitempty"`
}

// ImageConfig is an OCI image config document (config.json).
type ImageConfig struct {
	Architecture string         `json:"architecture"`
	OS           string         `json:"os"`
	Config       ExecConfig     `json:"config"`
	RootFS       RootFS         `json:"rootfs"`
	History      []HistoryEntry `json:"history,omitempty"`
}

// Index is an OCI image index document (index.json of a layout).
type Index struct {
	SchemaVersion int          `json:"schemaVersion"`
	MediaType     string       `json:"mediaType,omitempty"`
	Manifests     []Descriptor `json:"manifests"`
}

// canonicalJSON marshals v with sorted keys and no trailing newline so that
// document digests are deterministic. encoding/json already sorts map keys;
// struct fields marshal in declaration order, which is fixed.
func canonicalJSON(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("oci: marshaling %T: %w", v, err)
	}
	return b, nil
}

// ChainIDs computes the chain IDs for a sequence of diffIDs per the OCI
// spec recursion: ChainID(L0) = DiffID(L0);
// ChainID(L0..Ln) = Digest(ChainID(L0..Ln-1) + " " + DiffID(Ln)).
func ChainIDs(diffIDs []digest.Digest) []digest.Digest {
	out := make([]digest.Digest, len(diffIDs))
	for i, d := range diffIDs {
		if i == 0 {
			out[i] = d
			continue
		}
		out[i] = digest.FromString(string(out[i-1]) + " " + string(d))
	}
	return out
}

// FindByTag returns the descriptor in idx whose ref-name annotation equals
// tag, or false.
func (idx *Index) FindByTag(tag string) (Descriptor, bool) {
	for _, m := range idx.Manifests {
		if m.Annotations[AnnotationRefName] == tag {
			return m, true
		}
	}
	return Descriptor{}, false
}

// Tags returns the sorted set of ref-name annotations present in idx.
func (idx *Index) Tags() []string {
	var out []string
	for _, m := range idx.Manifests {
		if t, ok := m.Annotations[AnnotationRefName]; ok {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// SetTag inserts or replaces the manifest tagged tag.
func (idx *Index) SetTag(tag string, desc Descriptor) {
	if desc.Annotations == nil {
		desc.Annotations = map[string]string{}
	}
	desc.Annotations[AnnotationRefName] = tag
	for i, m := range idx.Manifests {
		if m.Annotations[AnnotationRefName] == tag {
			idx.Manifests[i] = desc
			return
		}
	}
	idx.Manifests = append(idx.Manifests, desc)
}
