package oci

import (
	"fmt"
	"path/filepath"
	"testing"

	"comtainer/internal/faultinject"
	"comtainer/internal/fsim"
)

// TestSaveLayoutCrashConsistency pins the layout crash contract: a
// layout save interrupted by injected faults (EIO, short writes, a
// power cut freezing torn temp files in place) must leave the
// directory in one of exactly two states — LoadLayout fails cleanly,
// or it yields a fully verified, loadable image. Nothing in between:
// index.json is committed last, so a reader never sees an index whose
// blobs have not all landed.
func TestSaveLayoutCrashConsistency(t *testing.T) {
	cycles := int64(100)
	if testing.Short() {
		cycles = 10
	}
	for seed := int64(1); seed <= cycles; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			r := NewRepository()
			desc, err := WriteImage(r.Store, testConfig(), []*fsim.FS{baseLayer(), appLayer()})
			if err != nil {
				t.Fatal(err)
			}
			r.Tag("app.dist", desc)

			dir := filepath.Join(t.TempDir(), "img.oci")
			plan := faultinject.NewPlan(seed).
				Rate(faultinject.EIO, 0.04).
				Rate(faultinject.ShortWrite, 0.05).
				Rate(faultinject.PowerCut, 0.03)
			saveErr := r.SaveLayoutFS(dir, faultinject.NewFS(faultinject.OS(), plan))

			back, loadErr := LoadLayout(dir)
			if saveErr != nil && loadErr != nil {
				return // crashed save, cleanly rejected layout: the common case
			}
			if saveErr == nil && loadErr != nil {
				t.Fatalf("save succeeded but load failed: %v", loadErr)
			}
			// Load succeeded (with or without a reported save error):
			// the layout must then be complete and verified end to end.
			img, err := back.LoadByTag("app.dist")
			if err != nil {
				t.Fatalf("loadable layout with broken tag: %v", err)
			}
			flat, err := img.Flatten()
			if err != nil {
				t.Fatalf("loadable layout with unverifiable layers: %v", err)
			}
			if !flat.Exists("/app/lulesh") {
				t.Fatal("loadable layout lost content")
			}
		})
	}
}
