package actioncache

import (
	"testing"

	"comtainer/internal/digest"
)

type kvDoc struct {
	Name  string   `json:"name"`
	Count int      `json:"count"`
	Tags  []string `json:"tags,omitempty"`
}

func TestGetPutJSONRoundTrip(t *testing.T) {
	c, err := NewDiskCache(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key := digest.FromString("kv-round-trip")

	var missing kvDoc
	ok, err := GetJSON(c, key, &missing)
	if err != nil {
		t.Fatalf("GetJSON on empty cache: %v", err)
	}
	if ok {
		t.Fatal("GetJSON reported a hit on an empty cache")
	}

	in := kvDoc{Name: "pkg/a", Count: 3, Tags: []string{"x", "y"}}
	if err := PutJSON(c, key, &in); err != nil {
		t.Fatalf("PutJSON: %v", err)
	}

	var out kvDoc
	ok, err = GetJSON(c, key, &out)
	if err != nil || !ok {
		t.Fatalf("GetJSON after Put: ok=%v err=%v", ok, err)
	}
	if out.Name != in.Name || out.Count != in.Count || len(out.Tags) != 2 {
		t.Fatalf("round-trip mismatch: got %+v want %+v", out, in)
	}
}

func TestGetJSONUndecodable(t *testing.T) {
	c, err := NewDiskCache(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key := digest.FromString("kv-not-json")
	if err := c.Put(key, []byte("not json at all")); err != nil {
		t.Fatal(err)
	}
	var out kvDoc
	if _, err := GetJSON(c, key, &out); err == nil {
		t.Fatal("GetJSON decoded garbage without error")
	}
}
