package actioncache

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"comtainer/internal/digest"
	"comtainer/internal/faultinject"
)

// flakyCache is a Cache stub whose failure mode is toggled by tests:
// when failing, every call errors; otherwise it is an always-miss
// remote that accepts Puts. calls counts attempts that reached it.
type flakyCache struct {
	failing atomic.Bool
	calls   atomic.Int64
	stored  map[digest.Digest][]byte
}

func newFlakyCache() *flakyCache {
	return &flakyCache{stored: make(map[digest.Digest][]byte)}
}

func (f *flakyCache) Get(key digest.Digest) ([]byte, bool, error) {
	f.calls.Add(1)
	if f.failing.Load() {
		return nil, false, errors.New("remote unreachable")
	}
	v, ok := f.stored[key]
	return v, ok, nil
}

func (f *flakyCache) Put(key digest.Digest, val []byte) error {
	f.calls.Add(1)
	if f.failing.Load() {
		return errors.New("remote unreachable")
	}
	f.stored[key] = val
	return nil
}

func (f *flakyCache) Stats() Stats { return Stats{} }

// TestBreakerTripsAndFailsFast pins the trip behaviour: Threshold
// consecutive failures reach the inner cache, then the breaker opens
// and every further call is shed with ErrOpen without touching it.
func TestBreakerTripsAndFailsFast(t *testing.T) {
	remote := newFlakyCache()
	remote.failing.Store(true)
	b := NewBreaker(remote)
	b.Threshold = 3
	b.Cooldown = time.Hour
	now := time.Unix(1000, 0)
	b.Now = func() time.Time { return now }

	for i := 0; i < 10; i++ {
		_, _, err := b.Get(key("k"))
		if err == nil {
			t.Fatalf("call %d succeeded against a failing remote", i)
		}
		if i >= 3 && !errors.Is(err, ErrOpen) {
			t.Fatalf("call %d: err=%v, want ErrOpen after the breaker trips", i, err)
		}
	}
	if got := remote.calls.Load(); got != 3 {
		t.Fatalf("inner cache saw %d calls, want exactly Threshold=3", got)
	}
	if got := b.Shed(); got != 7 {
		t.Fatalf("breaker shed %d calls, want 7", got)
	}
	if b.State() != "open" {
		t.Fatalf("state=%s, want open", b.State())
	}
}

// TestBreakerHalfOpenRecovers drives the recovery path: after the
// cooldown one probe is admitted; a successful probe closes the
// breaker, a failed probe reopens it for another full cooldown.
func TestBreakerHalfOpenRecovers(t *testing.T) {
	remote := newFlakyCache()
	remote.failing.Store(true)
	b := NewBreaker(remote)
	b.Threshold = 2
	b.Cooldown = time.Minute
	now := time.Unix(1000, 0)
	b.Now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		b.Get(key("k"))
	}
	if b.State() != "open" {
		t.Fatalf("state=%s, want open after %d failures", b.State(), 2)
	}

	// Probe while the remote is still down: reopens for a new cooldown.
	now = now.Add(61 * time.Second)
	if _, _, err := b.Get(key("k")); err == nil || errors.Is(err, ErrOpen) {
		t.Fatalf("probe err=%v, want the remote's own error", err)
	}
	if b.State() != "open" {
		t.Fatalf("state=%s, want open again after failed probe", b.State())
	}
	if _, _, err := b.Get(key("k")); !errors.Is(err, ErrOpen) {
		t.Fatalf("err=%v, want ErrOpen during the fresh cooldown", err)
	}

	// Remote recovers; next probe closes the breaker.
	remote.failing.Store(false)
	now = now.Add(61 * time.Second)
	if _, _, err := b.Get(key("k")); err != nil {
		t.Fatalf("successful probe returned %v", err)
	}
	if b.State() != "closed" {
		t.Fatalf("state=%s, want closed after successful probe", b.State())
	}
	if err := b.Put(key("k"), []byte("v")); err != nil {
		t.Fatalf("put after recovery: %v", err)
	}
}

// TestTieredDegradesToLocalWithBreaker is the acceptance check for
// graceful degradation: with the remote hard-down behind a breaker,
// a warm rebuild's worth of lookups must all succeed from local with
// zero errors surfaced, and the dead remote must be consulted only
// Threshold times — everything past the trip is a fast shed, which is
// what keeps warm-rebuild throughput within 2x of the no-remote
// baseline (see BenchmarkTieredFailingRemote).
func TestTieredDegradesToLocalWithBreaker(t *testing.T) {
	remote := newFlakyCache()
	remote.failing.Store(true)
	b := NewBreaker(remote)
	b.Threshold = 3
	b.Cooldown = time.Hour

	local, err := NewDiskCache(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(local, b)

	keys := make([]digest.Digest, 100)
	for i := range keys {
		keys[i] = key(fmt.Sprintf("action-%d", i))
		if err := local.Put(keys[i], []byte(fmt.Sprintf("result-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		v, ok, err := tiered.Get(k)
		if err != nil {
			t.Fatalf("get %d surfaced an error during degraded operation: %v", i, err)
		}
		if !ok || string(v) != fmt.Sprintf("result-%d", i) {
			t.Fatalf("get %d: local hit lost (ok=%v v=%q)", i, ok, v)
		}
	}
	if got := remote.calls.Load(); got != 0 {
		t.Fatalf("local hits consulted the remote %d times", got)
	}

	// Local misses are where the dead remote would hurt: only the
	// first Threshold of them may reach it.
	for i := 0; i < 50; i++ {
		_, ok, err := tiered.Get(key(fmt.Sprintf("cold-%d", i)))
		if err != nil || ok {
			t.Fatalf("cold get %d: ok=%v err=%v, want clean miss", i, ok, err)
		}
	}
	if got := remote.calls.Load(); got != 3 {
		t.Fatalf("dead remote consulted %d times, want Threshold=3", got)
	}
	if s := tiered.Stats(); s.Errors == 0 {
		t.Fatal("degraded remote failures not counted in stats")
	}
}

// BenchmarkTieredFailingRemote against BenchmarkTieredNoRemote is the
// throughput half of the degradation criterion: a warm rebuild (every
// lookup a local hit) over a tripped breaker must stay within 2x of
// the local-only baseline. Warm hits never consult the remote tier,
// and once the breaker is open even local misses cost only a fast
// ErrOpen shed instead of a network timeout.
func BenchmarkTieredFailingRemote(b *testing.B) {
	remote := newFlakyCache()
	remote.failing.Store(true)
	br := NewBreaker(remote)
	br.Cooldown = time.Hour
	benchTieredGets(b, NewTiered(mustDiskCache(b), br))
}

func BenchmarkTieredNoRemote(b *testing.B) {
	benchTieredGets(b, NewTiered(mustDiskCache(b), nil))
}

func mustDiskCache(b *testing.B) *DiskCache {
	c, err := NewDiskCache(b.TempDir(), 1<<24)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchTieredGets(b *testing.B, c Cache) {
	keys := make([]digest.Digest, 64)
	for i := range keys {
		keys[i] = key(fmt.Sprintf("bench-%d", i))
		if err := c.Put(keys[i], []byte("cached result")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _ := c.Get(keys[i%len(keys)]); !ok {
			b.Fatal("warm hit missed")
		}
	}
}

// TestDiskCacheCrashRestartVerify is the action-cache sibling of the
// blob-store chaos loop: drive Puts through a faulty filesystem until
// the power cut, reopen over the real one, and verify every Put that
// reported success is served back intact and the temp spool is clean.
func TestDiskCacheCrashRestartVerify(t *testing.T) {
	cycles := int64(100)
	if testing.Short() {
		cycles = 10
	}
	for seed := int64(1); seed <= cycles; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			plan := faultinject.NewPlan(seed).
				Rate(faultinject.EIO, 0.02).
				Rate(faultinject.ShortWrite, 0.03).
				Rate(faultinject.PowerCut, 0.02)
			ffs := faultinject.NewFS(faultinject.OS(), plan)
			payloads := rand.New(rand.NewSource(seed))

			committed := make(map[digest.Digest][]byte)
			cache, err := NewDiskCacheFS(dir, 1<<24, ffs)
			if err == nil {
				for i := 0; i < 20 && !ffs.Dead(); i++ {
					val := make([]byte, 64+payloads.Intn(1024))
					payloads.Read(val)
					k := key(fmt.Sprintf("seed-%d-action-%d", seed, i))
					if err := cache.Put(k, val); err == nil {
						committed[k] = val
					}
				}
			}

			reopened, err := NewDiskCache(dir, 1<<24)
			if err != nil {
				t.Fatalf("reopening cache after crash: %v", err)
			}
			for k, val := range committed {
				got, ok, err := reopened.Get(k)
				if err != nil || !ok {
					t.Fatalf("committed entry %s lost after crash (ok=%v err=%v)", k.Short(), ok, err)
				}
				if !bytes.Equal(got, val) {
					t.Fatalf("committed entry %s content changed after crash", k.Short())
				}
			}
			temps, err := os.ReadDir(filepath.Join(dir, "tmp"))
			if err != nil {
				t.Fatalf("reading tmp dir: %v", err)
			}
			if len(temps) != 0 {
				t.Fatalf("%d orphan temp files survived reopen", len(temps))
			}
		})
	}
}
