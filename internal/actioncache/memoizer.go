package actioncache

import (
	"sync"
	"sync/atomic"

	"comtainer/internal/digest"
)

// Memoizer drives the two-level cache protocol around action
// execution: look up manifest, re-observe inputs, look up result,
// replay on hit, execute-and-record on miss. Concurrent executions of
// the same action ID collapse into one (singleflight): the first
// caller executes, the rest wait and replay its result.
//
// A nil *Memoizer is valid and simply executes every action, so
// callers thread it through unconditionally.
type Memoizer struct {
	cache Cache

	mu      sync.Mutex
	flights map[digest.Digest]*flight

	hits    atomic.Int64
	misses  atomic.Int64
	deduped atomic.Int64
	errors  atomic.Int64
}

type flight struct {
	done chan struct{}
	res  *Result
	err  error
}

// NewMemoizer wraps cache. A nil cache yields a memoizer that only
// deduplicates concurrent identical actions.
func NewMemoizer(cache Cache) *Memoizer {
	return &Memoizer{cache: cache, flights: make(map[digest.Digest]*flight)}
}

// Cache returns the underlying tier stack (may be nil).
func (m *Memoizer) Cache() Cache {
	if m == nil {
		return nil
	}
	return m.cache
}

// Stats merges the memoizer's action-level counters with the tiers'.
func (m *Memoizer) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	s := Stats{
		Hits:    m.hits.Load(),
		Misses:  m.misses.Load(),
		Deduped: m.deduped.Load(),
		Errors:  m.errors.Load(),
	}
	if m.cache != nil {
		s = s.Add(m.cache.Stats())
	}
	return s
}

// Do runs one action. id is the action's pre-execution identity, st
// re-observes input states against the caller's file system, and exec
// performs the action for real, reporting everything it reads and
// writes through the Recorder it is handed.
//
// On return, replay reports whether the caller must apply res.Outputs
// to its file system itself (cache hit, or a deduped flight — the
// executing flight wrote only to its own FS). When replay is false
// the action ran via exec and its effects are already in place; res
// is the recorded result either way. Errors from exec are returned
// verbatim and never cached. Cache-tier failures degrade to misses.
func (m *Memoizer) Do(id digest.Digest, st InputState, exec func(*Recorder) error) (res *Result, replay bool, err error) {
	if m == nil {
		err = exec(nil)
		return nil, false, err
	}

	m.mu.Lock()
	if f, ok := m.flights[id]; ok {
		m.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		m.deduped.Add(1)
		return f.res, true, nil
	}
	f := &flight{done: make(chan struct{})}
	m.flights[id] = f
	m.mu.Unlock()

	f.res, replay, f.err = m.run(id, st, exec)

	m.mu.Lock()
	delete(m.flights, id)
	m.mu.Unlock()
	close(f.done)
	return f.res, replay, f.err
}

func (m *Memoizer) run(id digest.Digest, st InputState, exec func(*Recorder) error) (*Result, bool, error) {
	if res := m.lookup(id, st); res != nil {
		m.hits.Add(1)
		return res, true, nil
	}
	m.misses.Add(1)

	rec := NewRecorder()
	if err := exec(rec); err != nil {
		return nil, false, err
	}
	man, states := rec.Manifest()
	res := rec.Result()
	m.store(ManifestKey(id), EncodeManifest(man))
	m.store(ResultKey(id, man.Inputs, states), EncodeResult(*res))
	return res, false, nil
}

// lookup returns the cached result valid for the current input
// states, or nil. Decode failures and tier errors count as Errors and
// fall through to a miss.
func (m *Memoizer) lookup(id digest.Digest, st InputState) *Result {
	if m.cache == nil || st == nil {
		return nil
	}
	raw, ok := m.get(ManifestKey(id))
	if !ok {
		return nil
	}
	man, err := DecodeManifest(raw)
	if err != nil {
		m.errors.Add(1)
		return nil
	}
	states := make([]string, len(man.Inputs))
	for i, in := range man.Inputs {
		states[i] = st.StateOf(in)
	}
	raw, ok = m.get(ResultKey(id, man.Inputs, states))
	if !ok {
		return nil
	}
	res, err := DecodeResult(raw)
	if err != nil {
		m.errors.Add(1)
		return nil
	}
	return &res
}

func (m *Memoizer) get(key digest.Digest) ([]byte, bool) {
	raw, ok, err := m.cache.Get(key)
	if err != nil {
		m.errors.Add(1)
		return nil, false
	}
	return raw, ok
}

// store writes one entry; a failing tier must not fail the build.
func (m *Memoizer) store(key digest.Digest, val []byte) {
	if m.cache == nil {
		return
	}
	if err := m.cache.Put(key, val); err != nil {
		m.errors.Add(1)
	}
}
