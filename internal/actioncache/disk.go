package actioncache

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"comtainer/internal/digest"
	"comtainer/internal/faultinject"
)

// DiskCache is the local tier: entries sharded on disk as
// entries/sha256/ab/<keyhex> (the same layout as distrib.DiskStore's
// blob tree), written atomically via temp file + rename, verified
// against an embedded payload digest on every read, and evicted
// least-recently-used when a byte cap is set.
//
// Recency survives restarts through file mtimes: Get touches the
// entry, and reopening a cache seeds its LRU order from the mtimes on
// disk. Safe for concurrent use.
type DiskCache struct {
	root     string
	maxBytes int64 // 0 = unbounded
	fs       faultinject.FS

	mu      sync.Mutex
	entries map[digest.Digest]*diskEntry
	size    int64
	clock   int64 // logical LRU clock; larger = more recent

	hits, misses, evictions, evictedBytes, errors atomic.Int64
}

type diskEntry struct {
	size    int64
	lastUse int64
}

// entryMagic precedes every entry: "COMT-AC1 <payload digest>\n".
const entryMagic = "COMT-AC1 "

// NewDiskCache opens (creating if needed) a cache rooted at dir,
// clears stale temp files, and indexes existing entries. maxBytes of
// 0 disables eviction.
func NewDiskCache(dir string, maxBytes int64) (*DiskCache, error) {
	return NewDiskCacheFS(dir, maxBytes, faultinject.OS())
}

// NewDiskCacheFS is NewDiskCache writing through fsys — the hook chaos
// tests use to inject write faults and power cuts.
func NewDiskCacheFS(dir string, maxBytes int64, fsys faultinject.FS) (*DiskCache, error) {
	c := &DiskCache{
		root:     dir,
		maxBytes: maxBytes,
		fs:       fsys,
		entries:  make(map[digest.Digest]*diskEntry),
	}
	for _, d := range []string{filepath.Join(dir, "entries", "sha256"), c.tmpDir()} {
		if err := fsys.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("actioncache: creating %s: %w", d, err)
		}
	}
	// A temp file left behind is an interrupted write from a dead
	// process; it can never be completed.
	if names, err := os.ReadDir(c.tmpDir()); err == nil {
		for _, n := range names {
			if err := fsys.Remove(filepath.Join(c.tmpDir(), n.Name())); err != nil {
				return nil, fmt.Errorf("actioncache: sweeping temp %s: %w", n.Name(), err)
			}
		}
	}
	if err := c.index(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *DiskCache) tmpDir() string { return filepath.Join(c.root, "tmp") }

func (c *DiskCache) entryPath(key digest.Digest) string {
	hex := key.Hex()
	return filepath.Join(c.root, "entries", "sha256", hex[:2], hex)
}

// index scans the entry tree and seeds the LRU order from mtimes.
func (c *DiskCache) index() error {
	type found struct {
		key  digest.Digest
		size int64
		mod  time.Time
	}
	var all []found
	base := filepath.Join(c.root, "entries", "sha256")
	err := filepath.WalkDir(base, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		key, perr := digest.Parse("sha256:" + d.Name())
		if perr != nil {
			return nil // foreign file; leave it alone
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		all = append(all, found{key: key, size: info.Size(), mod: info.ModTime()})
		return nil
	})
	if err != nil {
		return fmt.Errorf("actioncache: indexing %s: %w", base, err)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mod.Before(all[j].mod) })
	// index only runs from the constructor, but taking the lock keeps
	// the entries/size/clock invariant uniform: every mutation of the
	// index holds c.mu, with no constructor-phase carve-out to reason
	// about.
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range all {
		c.clock++
		c.entries[f.key] = &diskEntry{size: f.size, lastUse: c.clock}
		c.size += f.size
	}
	return nil
}

// Get returns the entry under key, verifying its embedded payload
// digest. A corrupt entry is deleted and reported as a miss.
func (c *DiskCache) Get(key digest.Digest) ([]byte, bool, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false, nil
	}
	c.clock++
	e.lastUse = c.clock
	c.mu.Unlock()

	p := c.entryPath(key)
	raw, err := c.readEntry(p)
	if err != nil {
		c.drop(key)
		c.errors.Add(1)
		c.misses.Add(1)
		return nil, false, nil
	}
	val, err := decodeEntry(raw)
	if err != nil {
		// Bit rot or a truncated write: self-heal by discarding.
		c.fs.Remove(p)
		c.drop(key)
		c.errors.Add(1)
		c.misses.Add(1)
		return nil, false, nil
	}
	now := time.Now()
	os.Chtimes(p, now, now) // persist recency; best-effort
	c.hits.Add(1)
	return val, true, nil
}

// readEntry slurps an entry file through the FS seam.
func (c *DiskCache) readEntry(p string) ([]byte, error) {
	f, err := c.fs.Open(p)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// Put stores val under key atomically and evicts LRU entries if the
// cache exceeds its cap.
func (c *DiskCache) Put(key digest.Digest, val []byte) error {
	if err := key.Validate(); err != nil {
		return fmt.Errorf("actioncache: invalid key: %w", err)
	}
	data := encodeEntry(val)
	p := c.entryPath(key)
	if err := c.fs.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		c.errors.Add(1)
		return fmt.Errorf("actioncache: creating shard dir: %w", err)
	}
	tmp, err := c.fs.CreateTemp(c.tmpDir(), "put-*")
	if err != nil {
		c.errors.Add(1)
		return fmt.Errorf("actioncache: creating temp entry: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		c.fs.Remove(tmp.Name())
		c.errors.Add(1)
		return fmt.Errorf("actioncache: writing entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		c.fs.Remove(tmp.Name())
		c.errors.Add(1)
		return fmt.Errorf("actioncache: closing entry: %w", err)
	}
	if err := c.fs.Rename(tmp.Name(), p); err != nil {
		c.fs.Remove(tmp.Name())
		c.errors.Add(1)
		return fmt.Errorf("actioncache: committing entry: %w", err)
	}

	c.mu.Lock()
	if old, ok := c.entries[key]; ok {
		c.size -= old.size
	}
	c.clock++
	c.entries[key] = &diskEntry{size: int64(len(data)), lastUse: c.clock}
	c.size += int64(len(data))
	victims := c.pickVictimsLocked(key)
	c.mu.Unlock()

	for _, v := range victims {
		c.fs.Remove(c.entryPath(v))
	}
	return nil
}

// pickVictimsLocked removes least-recently-used entries from the
// index until the cache fits its cap, sparing keep (the entry just
// written), and returns their keys for file deletion outside the
// lock.
//
//comtainer:allow guardedby -- caller holds c.mu; the Locked suffix is the contract, and lockset analysis is intraprocedural
func (c *DiskCache) pickVictimsLocked(keep digest.Digest) []digest.Digest {
	if c.maxBytes <= 0 {
		return nil
	}
	var victims []digest.Digest
	for c.size > c.maxBytes && len(c.entries) > 1 {
		var lru digest.Digest
		var lruEntry *diskEntry
		for k, e := range c.entries {
			if k == keep {
				continue
			}
			if lruEntry == nil || e.lastUse < lruEntry.lastUse {
				lru, lruEntry = k, e
			}
		}
		if lruEntry == nil {
			break
		}
		delete(c.entries, lru)
		c.size -= lruEntry.size
		c.evictions.Add(1)
		c.evictedBytes.Add(lruEntry.size)
		victims = append(victims, lru)
	}
	return victims
}

// drop removes key from the index (the file is already gone or about
// to be).
func (c *DiskCache) drop(key digest.Digest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		delete(c.entries, key)
		c.size -= e.size
	}
}

// Len returns the number of indexed entries.
func (c *DiskCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Size returns the total indexed entry bytes.
func (c *DiskCache) Size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Stats reports the disk tier's counters.
func (c *DiskCache) Stats() Stats {
	return Stats{
		LocalHits:   c.hits.Load(),
		LocalMisses: c.misses.Load(),
		Evictions:   c.evictions.Load(),
		EvictedByte: c.evictedBytes.Load(),
		Errors:      c.errors.Load(),
	}
}

func encodeEntry(val []byte) []byte {
	hdr := entryMagic + string(digest.FromBytes(val)) + "\n"
	return append([]byte(hdr), val...)
}

func decodeEntry(raw []byte) ([]byte, error) {
	s := string(raw)
	rest, ok := strings.CutPrefix(s, entryMagic)
	if !ok {
		return nil, fmt.Errorf("actioncache: entry missing magic")
	}
	nl := strings.IndexByte(rest, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("actioncache: entry header truncated")
	}
	want, err := digest.Parse(rest[:nl])
	if err != nil {
		return nil, fmt.Errorf("actioncache: entry header: %w", err)
	}
	val := []byte(rest[nl+1:])
	if !want.Verify(val) {
		return nil, fmt.Errorf("actioncache: entry payload corrupt (want %s)", want.Short())
	}
	return val, nil
}
