package actioncache

import (
	"sync/atomic"

	"comtainer/internal/digest"
)

// Tiered stacks a fast local tier in front of a shared remote tier.
// Gets try local first and push remote hits through into the local
// tier; Puts write local synchronously and treat remote failures as
// soft (counted, not fatal) so an unreachable registry degrades the
// cache instead of the build. Either tier may be nil.
type Tiered struct {
	local  Cache
	remote Cache

	fills, errors atomic.Int64
}

// NewTiered combines local and remote. If only one is non-nil it is
// returned directly (no wrapper overhead); if both are nil, nil.
func NewTiered(local, remote Cache) Cache {
	switch {
	case local == nil && remote == nil:
		return nil
	case remote == nil:
		return local
	case local == nil:
		return remote
	}
	return &Tiered{local: local, remote: remote}
}

// Get checks local, then remote; a remote hit back-fills local. A
// remote tier error (including a breaker failing fast) is counted and
// degraded to a miss — the build recomputes rather than fails.
func (t *Tiered) Get(key digest.Digest) ([]byte, bool, error) {
	if val, ok, err := t.local.Get(key); err == nil && ok {
		return val, true, nil
	}
	val, ok, err := t.remote.Get(key)
	if err != nil {
		t.errors.Add(1)
		return nil, false, nil
	}
	if !ok {
		return nil, false, nil
	}
	if perr := t.local.Put(key, val); perr == nil {
		t.fills.Add(1)
	} else {
		t.errors.Add(1)
	}
	return val, true, nil
}

// Put writes both tiers; only a local failure is an error.
func (t *Tiered) Put(key digest.Digest, val []byte) error {
	lerr := t.local.Put(key, val)
	if rerr := t.remote.Put(key, val); rerr != nil {
		t.errors.Add(1)
	}
	return lerr
}

// Stats merges both tiers' counters with the push-through counters.
func (t *Tiered) Stats() Stats {
	s := Stats{RemoteFills: t.fills.Load(), Errors: t.errors.Load()}
	return s.Add(t.local.Stats()).Add(t.remote.Stats())
}
