package actioncache

import (
	"encoding/json"
	"fmt"

	"comtainer/internal/digest"
)

// GetJSON and PutJSON are the generic entry points for callers that
// want a Cache tier as a typed key→document store rather than the
// manifest/result action protocol — comtainer-vet's incremental
// analysis cache stores per-package results this way. Values
// round-trip through encoding/json behind the tier's usual guarantees
// (atomic writes, digest verify-on-read, LRU eviction for DiskCache).

// GetJSON fetches the document stored under key from c and decodes it
// into out. A missing key reports (false, nil); a present but
// undecodable document is an error.
func GetJSON[T any](c Cache, key digest.Digest, out *T) (bool, error) {
	raw, ok, err := c.Get(key)
	if err != nil || !ok {
		return false, err
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("actioncache: decoding document %s: %w", key.Short(), err)
	}
	return true, nil
}

// PutJSON stores v as a JSON document under key in c.
func PutJSON[T any](c Cache, key digest.Digest, v *T) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("actioncache: encoding document %s: %w", key.Short(), err)
	}
	return c.Put(key, raw)
}
