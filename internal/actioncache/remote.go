package actioncache

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"comtainer/internal/digest"
	"comtainer/internal/distrib"
	"comtainer/internal/oci"
)

// DefaultRemoteRepo is the registry repository RemoteCache uses when
// none is configured.
const DefaultRemoteRepo = "comtainer-actions"

// MediaTypeEntry is the media type of an action-cache entry blob
// stored in a registry.
const MediaTypeEntry = "application/vnd.comtainer.action-cache.entry.v1"

// RemoteCache stores entries in a comtainer registry via the distrib
// client, so a fleet of system-side rebuilders shares one warm cache.
// Each entry becomes a blob referenced by a one-layer manifest tagged
// "ac-<key hex>" — plain OCI distribution primitives, nothing
// registry-side to add. Transfers inherit the client's retry,
// worker-pool and singleflight behavior. Safe for concurrent use.
type RemoteCache struct {
	client *distrib.Client
	repo   string

	// Timeout bounds each Get/Put when the caller supplies no deadline
	// of its own, so a wedged registry can never hang a rebuild
	// indefinitely. Defaults to 30s; set negative to disable.
	Timeout time.Duration

	hits, misses, errors atomic.Int64
}

// defaultRemoteTimeout is the per-operation deadline applied when
// RemoteCache.Timeout is zero.
const defaultRemoteTimeout = 30 * time.Second

// opCtx derives the per-operation context from ctx and c.Timeout.
func (c *RemoteCache) opCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	d := c.Timeout
	if d == 0 {
		d = defaultRemoteTimeout
	}
	if d < 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// NewRemoteCache returns a remote tier talking to the registry at
// base (e.g. "http://127.0.0.1:5000"), storing entries under repo
// (DefaultRemoteRepo if empty).
func NewRemoteCache(base, repo string) *RemoteCache {
	if repo == "" {
		repo = DefaultRemoteRepo
	}
	return &RemoteCache{client: distrib.NewClient(base), repo: repo}
}

// NewRemoteCacheClient is NewRemoteCache over an existing client
// (custom workers, retries, transport).
func NewRemoteCacheClient(client *distrib.Client, repo string) *RemoteCache {
	if repo == "" {
		repo = DefaultRemoteRepo
	}
	return &RemoteCache{client: client, repo: repo}
}

func (c *RemoteCache) tag(key digest.Digest) string { return "ac-" + key.Hex() }

// Get fetches the entry tagged for key under the default per-op
// deadline. A 404 on the manifest is a clean miss; any other failure
// is a tier error.
func (c *RemoteCache) Get(key digest.Digest) ([]byte, bool, error) {
	//comtainer:allow ctxflow -- Get implements the ctx-free Cache interface; the root here is bounded by the per-op Timeout opCtx applies, and ctx-aware callers use GetContext
	return c.GetContext(context.Background(), key)
}

// GetContext is Get honoring ctx: cancelling it aborts the transfer
// and any retry backoff. The per-op Timeout still applies on top.
func (c *RemoteCache) GetContext(ctx context.Context, key digest.Digest) ([]byte, bool, error) {
	ctx, cancel := c.opCtx(ctx)
	defer cancel()
	body, _, _, err := c.client.FetchManifest(ctx, c.repo, c.tag(key))
	if err != nil {
		if distrib.IsNotFound(err) {
			c.misses.Add(1)
			return nil, false, nil
		}
		c.errors.Add(1)
		return nil, false, err
	}
	var m oci.Manifest
	if err := json.Unmarshal(body, &m); err != nil || len(m.Layers) != 1 {
		c.errors.Add(1)
		return nil, false, fmt.Errorf("actioncache: remote entry %s has malformed manifest", key.Short())
	}
	mem := oci.NewStore()
	if err := c.client.FetchBlob(ctx, mem, c.repo, m.Layers[0].Digest); err != nil {
		c.errors.Add(1)
		return nil, false, fmt.Errorf("actioncache: fetching remote entry %s: %w", key.Short(), err)
	}
	val, err := mem.Get(m.Layers[0].Digest)
	if err != nil {
		c.errors.Add(1)
		return nil, false, err
	}
	c.hits.Add(1)
	return val, true, nil
}

// Put publishes val as a blob plus a tagged one-layer manifest under
// the default per-op deadline. The blob is pushed before the manifest
// so the registry's referential check always passes.
func (c *RemoteCache) Put(key digest.Digest, val []byte) error {
	//comtainer:allow ctxflow -- Put implements the ctx-free Cache interface; the root here is bounded by the per-op Timeout opCtx applies, and ctx-aware callers use PutContext
	return c.PutContext(context.Background(), key, val)
}

// PutContext is Put honoring ctx: cancelling it aborts the transfer
// and any retry backoff. The per-op Timeout still applies on top.
func (c *RemoteCache) PutContext(ctx context.Context, key digest.Digest, val []byte) error {
	ctx, cancel := c.opCtx(ctx)
	defer cancel()
	mem := oci.NewStore()
	vd := mem.Put(val)
	manifest := oci.Manifest{
		SchemaVersion: 2,
		MediaType:     oci.MediaTypeManifest,
		Layers: []oci.Descriptor{{
			MediaType: MediaTypeEntry,
			Digest:    vd,
			Size:      int64(len(val)),
		}},
		Annotations: map[string]string{"vnd.comtainer.action-cache.key": string(key)},
	}
	mb, err := json.Marshal(manifest)
	if err != nil {
		return fmt.Errorf("actioncache: marshaling remote manifest: %w", err)
	}
	md := mem.Put(mb)
	desc := oci.Descriptor{MediaType: oci.MediaTypeManifest, Digest: md, Size: int64(len(mb))}
	if err := c.client.PushImage(ctx, mem, desc, c.repo, c.tag(key)); err != nil {
		c.errors.Add(1)
		return fmt.Errorf("actioncache: pushing remote entry %s: %w", key.Short(), err)
	}
	return nil
}

// Stats reports the remote tier's counters.
func (c *RemoteCache) Stats() Stats {
	return Stats{
		RemoteHits:   c.hits.Load(),
		RemoteMisses: c.misses.Load(),
		Errors:       c.errors.Load(),
	}
}
