package actioncache

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"comtainer/internal/digest"
	"comtainer/internal/registry"
)

func key(s string) digest.Digest { return digest.FromString(s) }

func TestDocumentRoundTrip(t *testing.T) {
	man := Manifest{Inputs: []Input{
		{Op: OpRead, Path: "/src/a.c"},
		{Op: OpExists, Path: "/usr/lib/libm.so"},
	}}
	got, err := DecodeManifest(EncodeManifest(man))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Inputs) != 2 || got.Inputs[0] != man.Inputs[0] {
		t.Fatalf("manifest round trip mismatch: %+v", got)
	}
	res := Result{Outputs: []Output{{Path: "/src/a.o", Mode: 0o644, Data: []byte("obj")}}}
	rgot, err := DecodeResult(EncodeResult(res))
	if err != nil {
		t.Fatal(err)
	}
	if len(rgot.Outputs) != 1 || !bytes.Equal(rgot.Outputs[0].Data, []byte("obj")) {
		t.Fatalf("result round trip mismatch: %+v", rgot)
	}
	if _, err := DecodeManifest(EncodeResult(res)); err == nil {
		t.Fatal("manifest decoder accepted a result document")
	}
}

func TestActionSpecID(t *testing.T) {
	a := ActionSpec{Argv: []string{"gcc", "-c", "a.c"}, Cwd: "/w", March: "x86-64"}
	b := a
	if a.ID() != b.ID() {
		t.Fatal("identical specs got different IDs")
	}
	b.March = "znver4"
	if a.ID() == b.ID() {
		t.Fatal("different march collided")
	}
	if ManifestKey(a.ID()) == ResultKey(a.ID(), nil, nil) {
		t.Fatal("manifest and result key namespaces collide")
	}
}

func TestRecorderSelfOutputNotInput(t *testing.T) {
	rec := NewRecorder()
	rec.NoteInput(OpRead, "/w/app", "old-digest")
	rec.NoteOutput("/w/app", []byte("new"), 0o755)
	rec.NoteInput(OpRead, "/w/app", "new-digest") // re-read of own output: dropped
	man, states := rec.Manifest()
	if len(man.Inputs) != 1 || states[0] != "old-digest" {
		t.Fatalf("want only the pre-write read, got %+v %v", man.Inputs, states)
	}
}

func TestDiskCacheBasicAndVerify(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := key("k1")
	if err := c.Put(k, []byte("value-1")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(k)
	if err != nil || !ok || string(got) != "value-1" {
		t.Fatalf("Get = %q, %v, %v", got, ok, err)
	}
	if _, ok, _ := c.Get(key("absent")); ok {
		t.Fatal("hit on absent key")
	}

	// Corrupt the entry on disk: Get must detect, self-heal, and miss.
	p := c.entryPath(k)
	raw, _ := os.ReadFile(p)
	raw[len(raw)-1] ^= 0xff
	os.WriteFile(p, raw, 0o644)
	if _, ok, _ := c.Get(k); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not removed")
	}
	s := c.Stats()
	if s.LocalHits != 1 || s.LocalMisses != 2 || s.Errors != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDiskCachePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewDiskCache(dir, 0)
	if err := c.Put(key("p"), []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	c2, err := NewDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, _ := c2.Get(key("p"))
	if !ok || string(got) != "persisted" {
		t.Fatalf("reopened cache lost the entry: %q %v", got, ok)
	}
	if c2.Len() != 1 {
		t.Fatalf("Len = %d", c2.Len())
	}
}

func TestDiskCacheLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// Entries are ~100 bytes with header; cap at ~3 entries.
	val := bytes.Repeat([]byte("x"), 64)
	c, _ := NewDiskCache(dir, 3*(int64(len(entryMagic))+72+int64(len(val))))
	for i := 0; i < 3; i++ {
		if err := c.Put(key(fmt.Sprintf("e%d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	// Touch e0 so e1 becomes LRU, then insert a fourth entry.
	if _, ok, _ := c.Get(key("e0")); !ok {
		t.Fatal("e0 missing before eviction")
	}
	if err := c.Put(key("e3"), val); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get(key("e1")); ok {
		t.Fatal("LRU entry e1 survived eviction")
	}
	for _, k := range []string{"e0", "e2", "e3"} {
		if _, ok, _ := c.Get(key(k)); !ok {
			t.Fatalf("%s evicted but was not LRU", k)
		}
	}
	if s := c.Stats(); s.Evictions == 0 || s.EvictedByte == 0 {
		t.Fatalf("eviction not counted: %+v", s)
	}
}

func TestRemoteCache(t *testing.T) {
	ts := httptest.NewServer(registry.NewServer().Handler())
	defer ts.Close()
	c := NewRemoteCache(ts.URL, "")

	if _, ok, err := c.Get(key("absent")); ok || err != nil {
		t.Fatalf("absent key: ok=%v err=%v", ok, err)
	}
	if err := c.Put(key("r1"), []byte("remote-value")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(key("r1"))
	if err != nil || !ok || string(got) != "remote-value" {
		t.Fatalf("Get = %q, %v, %v", got, ok, err)
	}
	s := c.Stats()
	if s.RemoteHits != 1 || s.RemoteMisses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTieredPushThrough(t *testing.T) {
	ts := httptest.NewServer(registry.NewServer().Handler())
	defer ts.Close()
	remote := NewRemoteCache(ts.URL, "")
	local, _ := NewDiskCache(t.TempDir(), 0)
	tiers := NewTiered(local, remote)

	// Seed only the remote, as a second machine would have.
	if err := remote.Put(key("shared"), []byte("fleet-wide")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := tiers.Get(key("shared"))
	if err != nil || !ok || string(got) != "fleet-wide" {
		t.Fatalf("tiered Get = %q, %v, %v", got, ok, err)
	}
	// The hit must have filled the local tier.
	if _, ok, _ := local.Get(key("shared")); !ok {
		t.Fatal("remote hit not pushed through to local tier")
	}
	if s := tiers.Stats(); s.RemoteFills != 1 {
		t.Fatalf("stats = %+v", s)
	}

	// Put writes both tiers.
	if err := tiers.Put(key("both"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := local.Get(key("both")); !ok {
		t.Fatal("Put skipped local tier")
	}
	if _, ok, _ := remote.Get(key("both")); !ok {
		t.Fatal("Put skipped remote tier")
	}
}

func TestNewTieredDegenerate(t *testing.T) {
	local, _ := NewDiskCache(t.TempDir(), 0)
	if NewTiered(nil, nil) != nil {
		t.Fatal("two nil tiers should collapse to nil")
	}
	if c := NewTiered(local, nil); c != Cache(local) {
		t.Fatal("single tier should be returned unwrapped")
	}
}

// mapState serves input states from a fixed map (simulating FS content).
type mapState map[Input]string

func (m mapState) StateOf(in Input) string { return m[in] }

func TestMemoizerHitMissAndInvalidation(t *testing.T) {
	local, _ := NewDiskCache(t.TempDir(), 0)
	m := NewMemoizer(local)
	id := ActionSpec{Argv: []string{"cc", "-c", "a.c"}, Cwd: "/w"}.ID()
	in := Input{Op: OpRead, Path: "/w/a.c"}

	execs := 0
	exec := func(content string) func(*Recorder) error {
		return func(rec *Recorder) error {
			execs++
			rec.NoteInput(OpRead, "/w/a.c", content)
			rec.NoteOutput("/w/a.o", []byte("obj-"+content), 0o644)
			return nil
		}
	}

	// Cold: executes.
	if _, replay, err := m.Do(id, mapState{in: "v1"}, exec("v1")); err != nil || replay {
		t.Fatalf("cold: replay=%v err=%v", replay, err)
	}
	// Warm, same input state: replays.
	res, replay, err := m.Do(id, mapState{in: "v1"}, exec("v1"))
	if err != nil || !replay {
		t.Fatalf("warm: replay=%v err=%v", replay, err)
	}
	if len(res.Outputs) != 1 || string(res.Outputs[0].Data) != "obj-v1" {
		t.Fatalf("warm result = %+v", res)
	}
	// Changed input: the result key changes, so it executes again.
	if _, replay, err := m.Do(id, mapState{in: "v2"}, exec("v2")); err != nil || replay {
		t.Fatalf("invalidated: replay=%v err=%v", replay, err)
	}
	if execs != 2 {
		t.Fatalf("execs = %d, want 2", execs)
	}
	s := m.Stats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMemoizerErrorsNotCached(t *testing.T) {
	local, _ := NewDiskCache(t.TempDir(), 0)
	m := NewMemoizer(local)
	id := key("failing-action")
	boom := fmt.Errorf("boom")
	if _, _, err := m.Do(id, mapState{}, func(*Recorder) error { return boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
	// Must execute again, not replay the failure.
	ran := false
	if _, replay, err := m.Do(id, mapState{}, func(*Recorder) error { ran = true; return nil }); err != nil || replay {
		t.Fatalf("replay=%v err=%v", replay, err)
	}
	if !ran {
		t.Fatal("second attempt did not execute")
	}
}

func TestMemoizerSingleflight(t *testing.T) {
	local, _ := NewDiskCache(t.TempDir(), 0)
	m := NewMemoizer(local)
	id := key("contended-action")

	var execs atomic.Int64
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := m.Do(id, mapState{}, func(rec *Recorder) error {
				execs.Add(1)
				<-release
				rec.NoteOutput("/out", []byte("x"), 0o644)
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	// Let everyone pile onto the flight, then release the executor.
	for m.Stats().Misses == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("execs = %d, want 1 (singleflight)", got)
	}
	if s := m.Stats(); s.Deduped == 0 {
		t.Fatalf("no dedups counted: %+v", s)
	}
}

func TestNilMemoizerExecutes(t *testing.T) {
	var m *Memoizer
	ran := false
	if _, replay, err := m.Do(key("x"), nil, func(*Recorder) error { ran = true; return nil }); err != nil || replay || !ran {
		t.Fatalf("nil memoizer: ran=%v replay=%v err=%v", ran, replay, err)
	}
}
