// Package actioncache is a content-addressed cache for toolchain
// actions: a recorded compile/link/archive command, re-executed during
// a system-side rebuild, is memoized under a key derived from its
// canonical argv, working directory, toolchain identity and resolved
// target profile, plus the digests of every input file it actually
// consulted. A warm rebuild of the same image for the same target then
// replays the recorded outputs instead of re-running the simulated
// toolchain — the same role Bazel's action cache or ccache's direct
// mode plays for real builds.
//
// The cache is two-level, in the style of ccache's direct mode:
//
//   - a manifest entry, keyed by the action ID alone, lists which
//     paths the action read (and how: content read, existence probe,
//     symlink resolution);
//   - a result entry, keyed by the action ID plus the observed state
//     of every manifest input, holds the output files the action
//     produced.
//
// The split is what makes lookup possible before execution: the
// action ID is computable from the command alone, the manifest says
// which files to hash, and the hashed states select the result valid
// for the current file-system contents.
//
// Storage is pluggable via the Cache interface. DiskCache is the
// sharded on-disk tier (atomic temp+rename writes, digest
// verify-on-read, LRU eviction under a size cap); RemoteCache stores
// entries as blobs in a comtainer registry through the distrib
// client; Tiered stacks the two with push-through on remote hits.
// Memoizer drives the protocol and deduplicates concurrent identical
// actions with a singleflight group.
package actioncache

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"sort"
	"strconv"
	"strings"
	"sync"

	"comtainer/internal/digest"
)

// Cache is one storage tier: a flat digest-keyed byte store. Values
// are the encoded manifest and result documents; implementations must
// be safe for concurrent use.
type Cache interface {
	// Get returns the value stored under key, or found=false on a
	// miss. An error means the tier failed, not that the key is
	// absent.
	Get(key digest.Digest) (val []byte, found bool, err error)
	// Put stores val under key, replacing any previous value.
	Put(key digest.Digest, val []byte) error
	// Stats returns a snapshot of the tier's cumulative counters.
	Stats() Stats
}

// Stats aggregates counters across the memoizer and its tiers. Every
// component fills only the fields it owns; Add merges snapshots.
type Stats struct {
	// Action-level outcomes, counted by the Memoizer.
	Hits    int64 // actions replayed from cache
	Misses  int64 // actions executed and (attempted to be) cached
	Deduped int64 // actions that joined an in-flight identical action

	// Disk-tier outcomes.
	LocalHits   int64
	LocalMisses int64
	Evictions   int64 // entries evicted to honor the size cap
	EvictedByte int64 // bytes reclaimed by eviction

	// Remote-tier outcomes.
	RemoteHits   int64
	RemoteMisses int64
	RemoteFills  int64 // remote hits copied into the local tier

	// Entries dropped or operations failed, across tiers.
	Errors int64
}

// Add returns the field-wise sum of s and o.
func (s Stats) Add(o Stats) Stats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Deduped += o.Deduped
	s.LocalHits += o.LocalHits
	s.LocalMisses += o.LocalMisses
	s.Evictions += o.Evictions
	s.EvictedByte += o.EvictedByte
	s.RemoteHits += o.RemoteHits
	s.RemoteMisses += o.RemoteMisses
	s.RemoteFills += o.RemoteFills
	s.Errors += o.Errors
	return s
}

// String renders the snapshot as the one-line summary the CLI prints.
func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses, %d deduped (local %d/%d, remote %d/%d, %d fills, %d evictions, %d errors)",
		s.Hits, s.Misses, s.Deduped,
		s.LocalHits, s.LocalMisses, s.RemoteHits, s.RemoteMisses,
		s.RemoteFills, s.Evictions, s.Errors)
}

// --- action identity ---

// ActionSpec is the pre-execution identity of a toolchain action: the
// parts of a command that determine its behavior before any file is
// read. Two invocations with equal specs are the same action and may
// share a cache entry (subject to their input states matching).
type ActionSpec struct {
	Argv []string `json:"argv"` // after response-file expansion
	Cwd  string   `json:"cwd"`

	// Toolchain identity and resolved target profile, for tools whose
	// output depends on them. The fingerprint covers vendor, version
	// and capability flags so that e.g. a GCC and an ICC invocation
	// with identical argv never collide.
	Toolchain string `json:"toolchain,omitempty"`
	TargetISA string `json:"targetISA,omitempty"`
	March     string `json:"march,omitempty"`
	Mtune     string `json:"mtune,omitempty"`
	OptLevel  string `json:"optLevel,omitempty"`
}

// ID returns the action's digest: the cache key root for both the
// manifest and result entries.
func (s ActionSpec) ID() digest.Digest {
	b, err := json.Marshal(s)
	if err != nil {
		// ActionSpec contains only strings; Marshal cannot fail.
		panic("actioncache: marshaling ActionSpec: " + err.Error())
	}
	return digest.FromString("comtainer-action/v1\x00" + string(b))
}

// ManifestKey is the digest under which an action's input manifest is
// stored. Domain-separated from result keys so the two namespaces
// cannot collide.
func ManifestKey(actionID digest.Digest) digest.Digest {
	return digest.FromString("comtainer-action-manifest/v1\x00" + string(actionID))
}

// ResultKey is the digest under which an action's outputs are stored
// for one particular observed state of its inputs. Inputs and states
// are paired positionally.
func ResultKey(actionID digest.Digest, inputs []Input, states []string) digest.Digest {
	var b strings.Builder
	b.WriteString("comtainer-action-result/v1\x00")
	b.WriteString(string(actionID))
	for i, in := range inputs {
		b.WriteByte(0)
		b.WriteString(string(in.Op))
		b.WriteByte(0)
		b.WriteString(in.Path)
		b.WriteByte(0)
		b.WriteString(states[i])
	}
	return digest.FromString(b.String())
}

// --- manifest and result documents ---

// InputOp is how an action consulted an input path; the replay check
// must re-observe the path the same way.
type InputOp string

const (
	OpRead    InputOp = "read"    // file content was read
	OpExists  InputOp = "exists"  // only existence was probed
	OpResolve InputOp = "resolve" // a symlink chain was resolved
)

// Input is one dependency edge of an action: a path and the operation
// through which the action observed it.
type Input struct {
	Op   InputOp `json:"op"`
	Path string  `json:"path"`
}

// Output is one file an action produced.
type Output struct {
	Path string `json:"path"`
	Mode uint32 `json:"mode"`
	Data []byte `json:"data"` // base64 in JSON
}

// Manifest lists an action's inputs, sorted by (path, op).
type Manifest struct {
	Inputs []Input `json:"inputs"`
}

// Result holds an action's outputs, sorted by path.
type Result struct {
	Outputs []Output `json:"outputs"`
}

const (
	manifestMagic = "#!COMT-ACTION-MANIFEST\n"
	resultMagic   = "#!COMT-ACTION-RESULT\n"
)

// EncodeManifest serializes m with a magic prefix.
func EncodeManifest(m Manifest) []byte { return encodeDoc(manifestMagic, m) }

// DecodeManifest parses bytes produced by EncodeManifest.
func DecodeManifest(b []byte) (Manifest, error) {
	var m Manifest
	err := decodeDoc(manifestMagic, b, &m)
	return m, err
}

// EncodeResult serializes r with a magic prefix.
func EncodeResult(r Result) []byte { return encodeDoc(resultMagic, r) }

// DecodeResult parses bytes produced by EncodeResult.
func DecodeResult(b []byte) (Result, error) {
	var r Result
	err := decodeDoc(resultMagic, b, &r)
	return r, err
}

func encodeDoc(magic string, v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic("actioncache: marshaling document: " + err.Error())
	}
	return append([]byte(magic), b...)
}

func decodeDoc(magic string, b []byte, v any) error {
	rest, ok := strings.CutPrefix(string(b), magic)
	if !ok {
		return fmt.Errorf("actioncache: missing %q magic", strings.TrimSpace(magic))
	}
	if err := json.Unmarshal([]byte(rest), v); err != nil {
		return fmt.Errorf("actioncache: decoding document: %w", err)
	}
	return nil
}

// --- execution recording ---

// Recorder collects the inputs an action observes and the outputs it
// writes while it executes. A nil Recorder is valid and records
// nothing, so instrumented code needs no cache-enabled check at every
// call site. Safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	inputs  map[Input]string  // observed state per input edge
	outputs map[string]Output // by path; last write wins
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		inputs:  make(map[Input]string),
		outputs: make(map[string]Output),
	}
}

// NoteInput records that the action observed path via op and saw
// state. Reads of a path the action itself already wrote are not
// inputs (the action would see its own output on replay too) and are
// dropped.
func (r *Recorder) NoteInput(op InputOp, path, state string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, self := r.outputs[path]; self {
		return
	}
	r.inputs[Input{Op: op, Path: path}] = state
}

// NoteOutput records that the action wrote data to path with mode.
func (r *Recorder) NoteOutput(path string, data []byte, mode fs.FileMode) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.outputs[path] = Output{Path: path, Mode: uint32(mode.Perm()), Data: append([]byte(nil), data...)}
}

// Manifest returns the recorded inputs and their observed states,
// canonically ordered.
func (r *Recorder) Manifest() (Manifest, []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	inputs := make([]Input, 0, len(r.inputs))
	for in := range r.inputs {
		inputs = append(inputs, in)
	}
	sort.Slice(inputs, func(i, j int) bool {
		if inputs[i].Path != inputs[j].Path {
			return inputs[i].Path < inputs[j].Path
		}
		return inputs[i].Op < inputs[j].Op
	})
	states := make([]string, len(inputs))
	for i, in := range inputs {
		states[i] = r.inputs[in]
	}
	return Manifest{Inputs: inputs}, states
}

// Result returns the recorded outputs, canonically ordered.
func (r *Recorder) Result() *Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	outputs := make([]Output, 0, len(r.outputs))
	for _, out := range r.outputs {
		outputs = append(outputs, out)
	}
	sort.Slice(outputs, func(i, j int) bool { return outputs[i].Path < outputs[j].Path })
	return &Result{Outputs: outputs}
}

// InputState re-observes inputs at lookup time; the Memoizer uses it
// to decide whether a cached result is valid for the current
// file-system contents. Implementations must produce exactly the
// state strings the executing side records, or nothing will ever hit.
type InputState interface {
	StateOf(in Input) string
}

// ReadState is the canonical state string for an OpRead observation:
// the content digest, or AbsentState if the read failed.
func ReadState(data []byte, err error) string {
	if err != nil {
		return AbsentState
	}
	return string(digest.FromBytes(data))
}

// ExistsState is the canonical state string for an OpExists
// observation.
func ExistsState(ok bool) string { return strconv.FormatBool(ok) }

// ResolveState is the canonical state string for an OpResolve
// observation: the resolved path, or AbsentState on failure.
func ResolveState(resolved string, err error) string {
	if err != nil {
		return AbsentState
	}
	return resolved
}

// AbsentState marks an input whose observation failed (missing file,
// dangling symlink). It cannot collide with a digest or a path.
const AbsentState = "!absent"
