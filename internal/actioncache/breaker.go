package actioncache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"comtainer/internal/digest"
)

// ErrOpen is returned by a Breaker that is failing fast: the wrapped
// tier has failed too many times in a row and calls are being shed
// until the cooldown lapses.
var ErrOpen = errors.New("actioncache: circuit breaker open")

// Breaker state machine: closed (calls pass, consecutive failures
// counted) → open after Threshold failures (calls fail fast with
// ErrOpen, costing nothing) → half-open after Cooldown (exactly one
// probe call passes; success closes the breaker, failure re-opens it).
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// Breaker wraps a Cache tier — typically the RemoteCache — in a
// circuit breaker, so a registry that is down or misbehaving costs
// each rebuild one fast ErrOpen instead of a full timeout-and-retry
// cycle per action. Stacked under Tiered (which treats remote errors
// as soft misses) the effect is automatic degradation to local-only
// operation, with periodic half-open probes to notice recovery.
// Safe for concurrent use.
type Breaker struct {
	inner Cache

	// Threshold is how many consecutive failures trip the breaker
	// (default 3).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (default 30s).
	Cooldown time.Duration
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
	probing  bool

	shed atomic.Int64
}

// NewBreaker wraps inner with default threshold and cooldown.
func NewBreaker(inner Cache) *Breaker {
	return &Breaker{inner: inner}
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 3
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return 30 * time.Second
}

func (b *Breaker) clock() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

// State reports the current state as a word (for logs and tests).
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Shed returns how many calls were refused with ErrOpen.
func (b *Breaker) Shed() int64 { return b.shed.Load() }

// allow decides whether a call may proceed. In the open state it
// transitions to half-open once the cooldown has lapsed and admits
// exactly one probe; everything else is shed.
func (b *Breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return nil
	case stateOpen:
		if b.clock().Sub(b.openedAt) < b.cooldown() {
			b.shed.Add(1)
			return ErrOpen
		}
		b.state = stateHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			b.shed.Add(1)
			return ErrOpen
		}
		b.probing = true
		return nil
	}
}

// record feeds a call outcome back into the state machine.
func (b *Breaker) record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == stateHalfOpen {
		b.probing = false
		if err == nil {
			b.state = stateClosed
			b.failures = 0
		} else {
			b.state = stateOpen
			b.openedAt = b.clock()
		}
		return
	}
	if err == nil {
		b.failures = 0
		return
	}
	b.failures++
	if b.failures >= b.threshold() {
		b.state = stateOpen
		b.openedAt = b.clock()
	}
}

// Get passes through to the wrapped tier unless the breaker is open.
// A miss is a success — only errors count against the tier.
func (b *Breaker) Get(key digest.Digest) ([]byte, bool, error) {
	if err := b.allow(); err != nil {
		return nil, false, err
	}
	val, ok, err := b.inner.Get(key)
	b.record(err)
	if err != nil {
		return nil, false, fmt.Errorf("actioncache: breaker: %w", err)
	}
	return val, ok, nil
}

// Put passes through to the wrapped tier unless the breaker is open.
func (b *Breaker) Put(key digest.Digest, val []byte) error {
	if err := b.allow(); err != nil {
		return err
	}
	err := b.inner.Put(key, val)
	b.record(err)
	if err != nil {
		return fmt.Errorf("actioncache: breaker: %w", err)
	}
	return nil
}

// Stats reports the wrapped tier's counters.
func (b *Breaker) Stats() Stats { return b.inner.Stats() }
