// Package faultinject is a deterministic, seeded fault-injection
// harness for the distribution stack. It has two injection surfaces:
//
//   - an FS hook layer (FS / FaultFS) wrapping the create, write,
//     rename and remove calls used by distrib.DiskStore,
//     actioncache.DiskCache and oci.SaveLayout, able to inject EIO,
//     short writes, and "power-cut" termination — after which every
//     further operation fails and whatever half-written state is on
//     disk stays exactly as a crash would leave it;
//
//   - an HTTP fault transport (Transport) wrapping a registry client's
//     round-tripper, able to inject 5xx bursts, truncated response
//     bodies, latency spikes and connection drops.
//
// Faults come from a Plan: a seeded PRNG plus optional exact "fail the
// Nth operation" triggers. The same seed over the same operation
// sequence injects the same faults, so a chaos failure reproduces from
// its seed alone. Every injected fault is recorded and retrievable via
// Events for debugging.
//
// The package depends only on the standard library; the stores it
// wraps import it, never the reverse.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"syscall"
	"time"
)

// Kind names one class of injectable fault.
type Kind string

const (
	// EIO fails the operation with an injected I/O error.
	EIO Kind = "eio"
	// ShortWrite writes only a seeded prefix of the buffer, then fails.
	ShortWrite Kind = "short-write"
	// PowerCut simulates the process dying mid-operation: a write may
	// persist a prefix, then the whole FS goes dead — every subsequent
	// operation fails with ErrPowerCut and nothing is cleaned up.
	PowerCut Kind = "power-cut"
	// HTTP500 answers the request with a fabricated 503 without
	// touching the network.
	HTTP500 Kind = "http-500"
	// Truncate performs the request but cuts the response body short,
	// so the client sees fewer bytes than Content-Length promised.
	Truncate Kind = "truncate"
	// Latency delays the request (honoring the request context) before
	// performing it.
	Latency Kind = "latency"
	// Drop fails the request with a connection-reset error before any
	// bytes move.
	Drop Kind = "drop"
)

// ErrInjected is the injected I/O failure; it wraps syscall.EIO so
// errors.Is(err, syscall.EIO) holds.
var ErrInjected = fmt.Errorf("faultinject: injected I/O error: %w", syscall.EIO)

// ErrPowerCut marks the simulated crash point and every operation
// attempted after it.
var ErrPowerCut = errors.New("faultinject: power cut")

// Event records one injected fault: the 1-based operation number it
// hit, a short operation description, and the fault kind.
type Event struct {
	N    int64
	Op   string
	Kind Kind
}

// Plan is a deterministic fault schedule. Operations that consult the
// plan are numbered from 1 in call order; a fault fires either because
// an At/Burst trigger names that operation number, or because the
// seeded PRNG draws under the configured per-kind rate. A Plan is safe
// for concurrent use, but operation numbering is only reproducible
// when the wrapped operations themselves happen in a deterministic
// order (chaos tests drive the store serially for exactly this
// reason).
type Plan struct {
	mu      sync.Mutex
	rng     *rand.Rand
	rates   map[Kind]float64
	at      map[int64]Kind
	latency time.Duration
	n       int64
	events  []Event
}

// NewPlan returns an empty plan seeded with seed. With no rates and no
// triggers it injects nothing.
func NewPlan(seed int64) *Plan {
	return &Plan{
		rng:     rand.New(rand.NewSource(seed)),
		rates:   make(map[Kind]float64),
		at:      make(map[int64]Kind),
		latency: 50 * time.Millisecond,
	}
}

// Rate sets the per-operation probability of kind, in [0, 1], and
// returns the plan for chaining.
func (p *Plan) Rate(kind Kind, rate float64) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rates[kind] = rate
	return p
}

// At schedules kind to fire on the nth operation (1-based), if that
// operation is eligible for it.
func (p *Plan) At(n int64, kind Kind) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.at[n] = kind
	return p
}

// Burst schedules kind on count consecutive operations starting at
// start — e.g. a 5xx burst from a briefly-sick registry.
func (p *Plan) Burst(start, count int64, kind Kind) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := int64(0); i < count; i++ {
		p.at[start+i] = kind
	}
	return p
}

// WithLatency sets the delay a Latency fault injects (default 50ms).
func (p *Plan) WithLatency(d time.Duration) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.latency = d
	return p
}

// Ops returns how many operations have consulted the plan.
func (p *Plan) Ops() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Events returns a copy of every fault injected so far, in order.
func (p *Plan) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.events...)
}

// intn draws a seeded value in [0, n) — used for split points of short
// and power-cut writes so the torn prefix length is reproducible too.
func (p *Plan) intn(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n <= 0 {
		return 0
	}
	return p.rng.Intn(n)
}

// next numbers the operation, decides whether a fault fires, and
// records it. Only kinds in eligible are considered; triggers naming
// an ineligible kind for this operation are skipped (not consumed).
func (p *Plan) next(op string, eligible ...Kind) (Kind, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.n++
	if kind, ok := p.at[p.n]; ok {
		for _, e := range eligible {
			if e == kind {
				p.events = append(p.events, Event{N: p.n, Op: op, Kind: kind})
				return kind, true
			}
		}
	}
	for _, kind := range eligible {
		rate, ok := p.rates[kind]
		if !ok || rate <= 0 {
			continue
		}
		if p.rng.Float64() < rate {
			p.events = append(p.events, Event{N: p.n, Op: op, Kind: kind})
			return kind, true
		}
	}
	return "", false
}
