package faultinject

import (
	"io"
	"io/fs"
	"os"
	"sync/atomic"
)

// File is the slice of *os.File the stores need: streaming reads and
// writes, seeking (upload spools rewind before commit), and the name
// for cleanup.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Name() string
}

// FS is the filesystem seam the distribution-stack stores write
// through: exactly the create/write/rename/remove surface their
// temp-file-plus-rename commit protocol uses. The real implementation
// is OS(); FaultFS wraps any FS with an injection plan.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	CreateTemp(dir, pattern string) (File, error)
	Open(name string) (File, error)
	Stat(name string) (fs.FileInfo, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Chmod(name string, mode fs.FileMode) error
}

// osFS is the passthrough FS over package os.
type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Stat(name string) (fs.FileInfo, error)     { return os.Stat(name) }
func (osFS) Rename(oldpath, newpath string) error      { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                  { return os.Remove(name) }
func (osFS) Chmod(name string, mode fs.FileMode) error { return os.Chmod(name, mode) }

// FaultFS wraps a base FS with a fault plan. Metadata operations
// (create, rename, remove, mkdir, stat, open, chmod) are eligible for
// EIO and PowerCut; writes additionally for ShortWrite. Once a
// PowerCut fires the FS is dead: every later operation — including the
// cleanup removes a store would run on the error path — fails with
// ErrPowerCut, so the on-disk state freezes exactly as a crash would
// leave it.
type FaultFS struct {
	base FS
	plan *Plan
	dead atomic.Bool
}

// NewFS wraps base with plan.
func NewFS(base FS, plan *Plan) *FaultFS {
	return &FaultFS{base: base, plan: plan}
}

// Dead reports whether a PowerCut has fired.
func (f *FaultFS) Dead() bool { return f.dead.Load() }

// Plan returns the plan driving this FS.
func (f *FaultFS) Plan() *Plan { return f.plan }

// meta runs the shared fault check for a metadata operation.
func (f *FaultFS) meta(op string) error {
	if f.dead.Load() {
		return ErrPowerCut
	}
	kind, ok := f.plan.next(op, EIO, PowerCut)
	if !ok {
		return nil
	}
	if kind == PowerCut {
		f.dead.Store(true)
		return ErrPowerCut
	}
	return ErrInjected
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if err := f.meta("mkdir " + path); err != nil {
		return err
	}
	return f.base.MkdirAll(path, perm)
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.meta("create " + dir); err != nil {
		return nil, err
	}
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	if err := f.meta("open " + name); err != nil {
		return nil, err
	}
	return f.base.Open(name)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if err := f.meta("stat " + name); err != nil {
		return nil, err
	}
	return f.base.Stat(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.meta("rename " + newpath); err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.meta("remove " + name); err != nil {
		return err
	}
	return f.base.Remove(name)
}

func (f *FaultFS) Chmod(name string, mode fs.FileMode) error {
	if err := f.meta("chmod " + name); err != nil {
		return err
	}
	return f.base.Chmod(name, mode)
}

// faultFile injects write faults on a file from a FaultFS.
type faultFile struct {
	File
	fs *FaultFS
}

func (w *faultFile) Write(p []byte) (int, error) {
	if w.fs.dead.Load() {
		return 0, ErrPowerCut
	}
	kind, ok := w.fs.plan.next("write "+w.Name(), EIO, ShortWrite, PowerCut)
	if !ok {
		return w.File.Write(p)
	}
	switch kind {
	case EIO:
		return 0, ErrInjected
	case ShortWrite:
		// Persist a seeded prefix — a torn page — then fail.
		n, _ := w.File.Write(p[:w.fs.plan.intn(len(p))])
		return n, ErrInjected
	default: // PowerCut
		n, _ := w.File.Write(p[:w.fs.plan.intn(len(p))])
		w.fs.dead.Store(true)
		return n, ErrPowerCut
	}
}

// Close closes the underlying file either way (no fd leak in tests)
// but reports the power cut if one fired.
func (w *faultFile) Close() error {
	err := w.File.Close()
	if w.fs.dead.Load() {
		return ErrPowerCut
	}
	return err
}
