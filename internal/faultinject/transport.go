package faultinject

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"syscall"
	"time"
)

// Transport is an http.RoundTripper that injects network faults from a
// plan in front of a base transport: fabricated 503s (HTTP500),
// truncated response bodies (Truncate), delayed requests (Latency,
// honoring the request context), and connection resets (Drop). Wrap a
// distrib.Client's HTTP transport with it to rehearse registry
// failure modes deterministically.
type Transport struct {
	base http.RoundTripper
	plan *Plan
}

// NewTransport wraps base (http.DefaultTransport when nil) with plan.
func NewTransport(base http.RoundTripper, plan *Plan) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, plan: plan}
}

// Plan returns the plan driving this transport.
func (t *Transport) Plan() *Plan { return t.plan }

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	op := "http " + req.Method + " " + req.URL.Path
	kind, ok := t.plan.next(op, HTTP500, Drop, Latency, Truncate)
	if !ok {
		return t.base.RoundTrip(req)
	}
	switch kind {
	case HTTP500:
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable",
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(strings.NewReader("faultinject: injected 503")),
			ContentLength: -1,
			Request:       req,
		}, nil
	case Drop:
		return nil, fmt.Errorf("faultinject: connection dropped: %w", syscall.ECONNRESET)
	case Latency:
		// Context-aware wait: a cancelled request aborts the spike
		// within one timer tick instead of sleeping through it.
		timer := time.NewTimer(t.plan.latency)
		defer timer.Stop()
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-timer.C:
		}
		return t.base.RoundTrip(req)
	default: // Truncate
		resp, err := t.base.RoundTrip(req)
		if err != nil || resp.ContentLength <= 1 {
			return resp, err
		}
		// Deliver a seeded strict prefix, then fail the read the way a
		// dying connection would.
		keep := int64(t.plan.intn(int(resp.ContentLength-1))) + 1
		resp.Body = &truncatedBody{rc: resp.Body, remain: keep}
		return resp, nil
	}
}

// truncatedBody serves remain bytes then reports an unexpected EOF.
type truncatedBody struct {
	rc     io.ReadCloser
	remain int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= int64(n)
	if err == io.EOF && b.remain > 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }
