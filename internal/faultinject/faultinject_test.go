package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"
)

// runFSSequence drives a fixed op sequence against a FaultFS and
// returns the per-op outcome string.
func runFSSequence(t *testing.T, dir string, plan *Plan) []string {
	t.Helper()
	fsys := NewFS(OS(), plan)
	var out []string
	note := func(err error) {
		switch {
		case err == nil:
			out = append(out, "ok")
		case errors.Is(err, ErrPowerCut):
			out = append(out, "powercut")
		default:
			out = append(out, "err")
		}
	}
	for i := 0; i < 8; i++ {
		f, err := fsys.CreateTemp(dir, "t-*")
		note(err)
		if err != nil {
			continue
		}
		_, werr := f.Write([]byte("payload payload payload"))
		note(werr)
		f.Close()
		if werr == nil {
			note(fsys.Rename(f.Name(), filepath.Join(dir, "blob")))
		} else {
			note(fsys.Remove(f.Name()))
		}
	}
	return out
}

func TestPlanDeterminism(t *testing.T) {
	outcomes := func() ([]string, []Event) {
		plan := NewPlan(42).Rate(EIO, 0.2).Rate(ShortWrite, 0.2).At(17, PowerCut)
		seq := runFSSequence(t, t.TempDir(), plan)
		return seq, plan.Events()
	}
	seq1, ev1 := outcomes()
	seq2, ev2 := outcomes()
	if !reflect.DeepEqual(seq1, seq2) {
		t.Errorf("same seed, different outcomes:\n%v\n%v", seq1, seq2)
	}
	// Events differ only in Op paths (temp names vary); compare N/Kind.
	if len(ev1) != len(ev2) {
		t.Fatalf("same seed, different event counts: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i].N != ev2[i].N || ev1[i].Kind != ev2[i].Kind {
			t.Errorf("event %d: %v vs %v", i, ev1[i], ev2[i])
		}
	}
}

func TestPowerCutFreezesFS(t *testing.T) {
	dir := t.TempDir()
	plan := NewPlan(1).At(2, PowerCut) // op 1 = create, op 2 = write
	fsys := NewFS(OS(), plan)
	f, err := fsys.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("doomed")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write error = %v, want ErrPowerCut", err)
	}
	f.Close()
	if !fsys.Dead() {
		t.Fatal("FS not dead after power cut")
	}
	// Cleanup on the error path fails too: the torn temp file stays.
	if err := fsys.Remove(f.Name()); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("post-cut remove error = %v, want ErrPowerCut", err)
	}
	if _, err := os.Stat(f.Name()); err != nil {
		t.Fatalf("torn temp file should survive the crash: %v", err)
	}
}

func TestInjectedEIOUnwraps(t *testing.T) {
	plan := NewPlan(3).At(1, EIO)
	fsys := NewFS(OS(), plan)
	_, err := fsys.CreateTemp(t.TempDir(), "t-*")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("error = %v, want ErrInjected wrapping EIO", err)
	}
}

func TestTransportFaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "10")
		_, _ = w.Write([]byte("0123456789"))
	}))
	defer srv.Close()

	plan := NewPlan(7).At(1, HTTP500).At(2, Drop).At(3, Truncate)
	client := &http.Client{Transport: NewTransport(nil, plan)}

	resp, err := client.Get(srv.URL)
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected 503: status=%v err=%v", resp, err)
	}
	resp.Body.Close()

	if _, err := client.Get(srv.URL); err == nil || !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("injected drop error = %v, want ECONNRESET", err)
	}

	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated read error = %v (got %d bytes), want ErrUnexpectedEOF", err, len(body))
	}
	if len(body) >= 10 || len(body) < 1 {
		t.Fatalf("truncated body delivered %d bytes, want a strict prefix", len(body))
	}

	// Past the plan's triggers: clean request.
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "0123456789" {
		t.Fatalf("clean request body = %q", body)
	}
}

func TestTransportLatencyHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	plan := NewPlan(9).At(1, Latency).WithLatency(time.Minute)
	client := &http.Client{Transport: NewTransport(nil, plan)}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("request survived a one-minute latency spike with a 20ms deadline")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the latency wait ignored the context", elapsed)
	}
}
