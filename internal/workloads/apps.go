// Package workloads defines the evaluation applications of the paper's
// Table 2: nine HPC benchmarks (HPL, HPCG, LULESH, CoMD, HPCCG, miniAero,
// miniAMR, miniFE, miniMD) and two large real-world applications (LAMMPS
// with five workloads, OpenMX with four).
//
// Each app carries a synthetic source tree (sized so its cache layer
// reproduces Table 3's proportions), a two-stage Containerfile in the
// conventional and coMtainer variants, its library dependencies, and
// per-workload, per-system performance traits calibrated to the paper's
// reported results (see DESIGN.md §4).
package workloads

import (
	"fmt"
	"sort"
	"strings"

	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
)

// ISAPortability classifies how an app's sources travel across ISAs,
// driving the §5.5 cross-ISA experiment.
type ISAPortability int

const (
	// Portable sources compile on any ISA unchanged.
	Portable ISAPortability = iota
	// Guarded sources contain ISA-specific inline assembly behind the
	// COMT_PORTABLE fallback guard: cross-ISA builds need a -D added.
	Guarded
	// Mandatory sources contain unguarded ISA-specific code; cross-ISA
	// rebuilds fail (these apps are absent from Figure 11).
	Mandatory
)

// App is one evaluation application.
type App struct {
	Name        string
	Language    string // "c" or "c++"
	ReportedLoC int    // Table 2 LoC of the real application
	// SrcMiB is the simulated source-tree size (the dominant part of the
	// cache layer, Table 3).
	SrcMiB      float64
	NumSrcFiles int
	// DataMiB is bundled runtime data copied into the dist image (LAMMPS
	// potentials, OpenMX pseudopotentials).
	DataMiB float64
	// Libs are the -l names the final link uses.
	Libs []string
	// BuildPkgs / RuntimePkgs are apt package names installed in the two
	// stages.
	BuildPkgs   []string
	RuntimePkgs []string
	Portability ISAPortability
	// ExtraCFlags are ISA-specific build flags the app's x86 build script
	// uses (a Figure-11 line-change source); empty for portable scripts.
	ExtraCFlags map[string]string // isa -> flags
	// XBuildLines is the build-script line-change effort of the
	// traditional cross-compilation approach (Figure 11 baseline, taken
	// from the paper since we have no real cross-toolchain scripts).
	XBuildLines int
	// Workloads names the input decks; single-workload apps use their own
	// name.
	Workloads []string
	// UseMake builds through a Makefile (RUN make) instead of explicit
	// compiler lines — how large real applications actually build.
	UseMake bool
}

// BinPath returns where the dist image installs the application binary.
func (a *App) BinPath() string { return "/app/" + a.Name }

// compiler returns the driver the app's build uses.
func (a *App) compiler() string {
	if a.Language == "c++" {
		return "g++"
	}
	return "gcc"
}

// srcExt returns the source file extension for the app's language.
func (a *App) srcExt() string {
	if a.Language == "c++" {
		return ".cc"
	}
	return ".c"
}

// Sources generates the app's synthetic source tree for a build targeting
// isa. File contents are deterministic; the total size tracks SrcMiB.
func (a *App) Sources(isa string) map[string]string {
	files := make(map[string]string, a.NumSrcFiles+1)
	perFile := a.SrcMiB * sysprofile.SizeUnit / float64(a.NumSrcFiles)
	for i := 0; i < a.NumSrcFiles; i++ {
		name := fmt.Sprintf("%s_%02d%s", a.Name, i, a.srcExt())
		var b strings.Builder
		fmt.Fprintf(&b, "/* %s: translation unit %d of %d (synthetic reproduction source) */\n",
			a.Name, i+1, a.NumSrcFiles)
		fmt.Fprintf(&b, "#include \"%s.h\"\n", a.Name)
		if i == 0 {
			switch a.Portability {
			case Guarded:
				b.WriteString("#ifndef COMT_PORTABLE\n")
				fmt.Fprintf(&b, "__asm__(\"vendor-intrinsics\"); /* isa:%s */\n", isa)
				b.WriteString("#else\n/* portable scalar fallback */\n#endif\n")
			case Mandatory:
				fmt.Fprintf(&b, "__asm__(\"hand-tuned kernel\"); /* isa:%s */\n", isa)
			}
			fmt.Fprintf(&b, "int main(int argc, char **argv) { return %s_run(argc, argv); }\n", a.Name)
		}
		line := 0
		for b.Len() < int(perFile) {
			fmt.Fprintf(&b, "static const double %s_c%d_%d = %d.%04d;\n", a.Name, i, line, line, (line*7919)%10000)
			line++
		}
		files[name] = b.String()
	}
	files[a.Name+".h"] = fmt.Sprintf("/* %s public header */\nint %s_run(int, char **);\n", a.Name, a.Name)
	return files
}

// objectNames returns the object files the build produces, in order.
func (a *App) objectNames() []string {
	out := make([]string, a.NumSrcFiles)
	for i := range out {
		out[i] = fmt.Sprintf("%s_%02d.o", a.Name, i)
	}
	return out
}

// Containerfile renders the app's two-stage build script.
//
// comtainer selects the coMtainer variant (Env/Base base images, the
// paper's Figure 6 modification); otherwise the stock ubuntu base is used.
// isa picks the ISA-specific flag set for apps that have one.
func (a *App) Containerfile(isa string, comtainer bool) string {
	buildBase, distBase := sysprofile.TagUbuntu, sysprofile.TagUbuntu
	if comtainer {
		buildBase, distBase = sysprofile.TagEnv, sysprofile.TagBase
	}
	cc := a.compiler()
	flags := a.flagsFor(isa)

	var b strings.Builder
	fmt.Fprintf(&b, "FROM %s AS build\n", buildBase)
	pkgs := append([]string{"build-essential"}, a.BuildPkgs...)
	fmt.Fprintf(&b, "RUN apt-get update && apt-get install -y %s\n", strings.Join(pkgs, " "))
	b.WriteString("COPY src /app/src\n")
	b.WriteString("WORKDIR /app/src\n")
	if a.UseMake {
		b.WriteString("RUN make\n")
	} else {
		for i := 0; i < a.NumSrcFiles; i++ {
			fmt.Fprintf(&b, "RUN %s %s -c %s_%02d%s -o %s_%02d.o\n", cc, flags, a.Name, i, a.srcExt(), a.Name, i)
		}
		link := fmt.Sprintf("RUN %s %s -o %s", cc, strings.Join(a.objectNames(), " "), a.BinPath())
		for _, l := range a.Libs {
			link += " -l" + l
		}
		b.WriteString(link + "\n")
	}
	if a.DataMiB > 0 {
		b.WriteString("COPY data /app/data\n")
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "FROM %s AS dist\n", distBase)
	if len(a.RuntimePkgs) > 0 {
		fmt.Fprintf(&b, "RUN apt-get update && apt-get install -y %s\n", strings.Join(a.RuntimePkgs, " "))
	}
	fmt.Fprintf(&b, "COPY --from=build %s %s\n", a.BinPath(), a.BinPath())
	if a.DataMiB > 0 {
		fmt.Fprintf(&b, "COPY --from=build /app/data /app/data\n")
	}
	fmt.Fprintf(&b, "ENTRYPOINT [%q]\n", a.BinPath())
	return b.String()
}

// flagsFor returns the compile flag string for a build targeting isa.
func (a *App) flagsFor(isa string) string {
	flags := "-O2"
	if extra := a.ExtraCFlags[isa]; extra != "" {
		flags += " " + extra
	}
	if a.Portability == Guarded && isa == toolchain.ISAArm {
		flags += " -DCOMT_PORTABLE"
	}
	return flags
}

// Makefile renders the app's build makefile for a target ISA (used when
// UseMake is set; large applications build this way).
func (a *App) Makefile(isa string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CC := %s\n", a.compiler())
	fmt.Fprintf(&b, "CFLAGS := %s\n", a.flagsFor(isa))
	fmt.Fprintf(&b, "OBJS := %s\n", strings.Join(a.objectNames(), " "))
	libs := ""
	for _, l := range a.Libs {
		libs += " -l" + l
	}
	fmt.Fprintf(&b, "\nall: %s\n\n", a.BinPath())
	fmt.Fprintf(&b, "%s: $(OBJS)\n\t$(CC) $^%s -o $@\n\n", a.BinPath(), libs)
	fmt.Fprintf(&b, "%%.o: %%%s\n\t$(CC) $(CFLAGS) -c $< -o $@\n", a.srcExt())
	return b.String()
}

// Data generates the app's bundled data files (empty when DataMiB is 0).
func (a *App) Data() map[string][]byte {
	if a.DataMiB <= 0 {
		return nil
	}
	n := int(a.DataMiB * sysprofile.SizeUnit)
	pattern := []byte(a.Name + " input deck data. ")
	blob := make([]byte, n)
	for i := range blob {
		blob[i] = pattern[i%len(pattern)]
	}
	return map[string][]byte{"potentials.dat": blob}
}

// apps is the Table-2 application set.
var apps = []*App{
	{
		Name: "hpl", Language: "c", ReportedLoC: 37556,
		SrcMiB: 1.20, NumSrcFiles: 6,
		Libs:        []string{"blas", "m", "mpi"},
		BuildPkgs:   []string{"libopenblas0", "libopenmpi3"},
		RuntimePkgs: []string{"libopenblas0", "libopenmpi3"},
		Portability: Mandatory,
		ExtraCFlags: map[string]string{toolchain.ISAx86: "-msse4.2"},
		Workloads:   []string{"hpl"},
	},
	{
		Name: "hpcg", Language: "c++", ReportedLoC: 5529,
		SrcMiB: 0.72, NumSrcFiles: 4,
		Libs:        []string{"m", "mpi"},
		BuildPkgs:   []string{"libopenmpi3"},
		RuntimePkgs: []string{"libopenmpi3"},
		Portability: Portable,
		ExtraCFlags: map[string]string{toolchain.ISAx86: "-march=x86-64-v2"},
		XBuildLines: 41,
		Workloads:   []string{"hpcg"},
	},
	{
		Name: "lulesh", Language: "c++", ReportedLoC: 5546,
		SrcMiB: 0.58, NumSrcFiles: 4,
		Libs:        []string{"m", "mpi", "gomp"},
		BuildPkgs:   []string{"libopenmpi3"},
		RuntimePkgs: []string{"libopenmpi3"},
		Portability: Guarded,
		XBuildLines: 52,
		Workloads:   []string{"lulesh"},
	},
	{
		Name: "comd", Language: "c", ReportedLoC: 4668,
		SrcMiB: 0.66, NumSrcFiles: 4,
		Libs:        []string{"m", "mpi"},
		BuildPkgs:   []string{"libopenmpi3"},
		RuntimePkgs: []string{"libopenmpi3"},
		Portability: Portable,
		XBuildLines: 38,
		Workloads:   []string{"comd"},
	},
	{
		Name: "hpccg", Language: "c++", ReportedLoC: 1563,
		SrcMiB: 0.52, NumSrcFiles: 3,
		Libs:        []string{"m", "mpi"},
		BuildPkgs:   []string{"libopenmpi3"},
		RuntimePkgs: []string{"libopenmpi3"},
		Portability: Portable,
		XBuildLines: 35,
		Workloads:   []string{"hpccg"},
	},
	{
		Name: "miniaero", Language: "c++", ReportedLoC: 42056,
		SrcMiB: 0.55, NumSrcFiles: 5,
		Libs:        []string{"m", "mpi"},
		BuildPkgs:   []string{"libopenmpi3"},
		RuntimePkgs: []string{"libopenmpi3"},
		Portability: Mandatory,
		ExtraCFlags: map[string]string{toolchain.ISAx86: "-mavx2"},
		Workloads:   []string{"miniaero"},
	},
	{
		Name: "miniamr", Language: "c", ReportedLoC: 9957,
		SrcMiB: 0.72, NumSrcFiles: 5,
		Libs:        []string{"m", "mpi"},
		BuildPkgs:   []string{"libopenmpi3"},
		RuntimePkgs: []string{"libopenmpi3"},
		Portability: Portable,
		ExtraCFlags: map[string]string{toolchain.ISAx86: "-march=x86-64-v2"},
		XBuildLines: 44,
		Workloads:   []string{"miniamr"},
	},
	{
		Name: "minife", Language: "c++", ReportedLoC: 28010,
		SrcMiB: 0.60, NumSrcFiles: 4,
		Libs:        []string{"blas", "m", "mpi"},
		BuildPkgs:   []string{"libopenblas0", "libopenmpi3"},
		RuntimePkgs: []string{"libopenblas0", "libopenmpi3"},
		Portability: Portable,
		ExtraCFlags: map[string]string{toolchain.ISAx86: "-msse4.2"},
		XBuildLines: 49,
		Workloads:   []string{"minife"},
	},
	{
		Name: "minimd", Language: "c++", ReportedLoC: 4404,
		SrcMiB: 0.45, NumSrcFiles: 3,
		Libs:        []string{"m", "mpi"},
		BuildPkgs:   []string{"libopenmpi3"},
		RuntimePkgs: []string{"libopenmpi3"},
		Portability: Portable,
		XBuildLines: 37,
		Workloads:   []string{"minimd"},
	},
	{
		Name: "lammps", Language: "c++", ReportedLoC: 2273423,
		SrcMiB: 13.9, NumSrcFiles: 12, DataMiB: 32,
		Libs:        []string{"m", "mpi", "fftw3", "gomp", "z"},
		BuildPkgs:   []string{"libopenmpi3", "libfftw3-double3"},
		RuntimePkgs: []string{"libopenmpi3", "libfftw3-double3"},
		Portability: Mandatory,
		ExtraCFlags: map[string]string{toolchain.ISAx86: "-mavx2 -mfma"},
		Workloads:   []string{"chain", "chute", "eam", "lj", "rhodo"},
		UseMake:     true,
	},
	{
		Name: "openmx", Language: "c", ReportedLoC: 287381,
		SrcMiB: 23.2, NumSrcFiles: 16, DataMiB: 266,
		Libs:        []string{"blas", "lapack", "fftw3", "m", "mpi", "gomp"},
		BuildPkgs:   []string{"libopenblas0", "liblapack3", "libfftw3-double3", "libopenmpi3"},
		RuntimePkgs: []string{"libopenblas0", "liblapack3", "libfftw3-double3", "libopenmpi3"},
		Portability: Mandatory,
		ExtraCFlags: map[string]string{toolchain.ISAx86: "-msse4.2"},
		Workloads:   []string{"awf5e", "awf7e", "nitro", "pt13"},
		UseMake:     true,
	},
}

// Apps returns the Table-2 application set, in paper order.
func Apps() []*App { return apps }

// Find returns the app with the given name.
func Find(name string) (*App, error) {
	for _, a := range apps {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown app %q", name)
}

// Ref names one (app, workload) pair.
type Ref struct {
	App      *App
	Workload string
}

// ID returns "app" or "app.workload" in the paper's labeling style.
func (r Ref) ID() string {
	if r.Workload == r.App.Name {
		return r.App.Name
	}
	return r.App.Name + "." + r.Workload
}

// AllRefs lists every (app, workload) pair, 18 in total.
func AllRefs() []Ref {
	var out []Ref
	for _, a := range apps {
		for _, w := range a.Workloads {
			out = append(out, Ref{App: a, Workload: w})
		}
	}
	return out
}

// CrossISAApps returns the apps that can cross ISAs with minor script
// changes (Figure 11's population), sorted by name.
func CrossISAApps() []*App {
	var out []*App
	for _, a := range apps {
		if a.Portability != Mandatory {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
