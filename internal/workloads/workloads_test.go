package workloads

import (
	"strings"
	"testing"

	"comtainer/internal/containerfile"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
)

func TestTable2Completeness(t *testing.T) {
	rows := Table2()
	if len(rows) != 18 {
		t.Fatalf("Table 2 lists 18 workloads, got %d", len(rows))
	}
	wantLoC := map[string]int{
		"hpl": 37556, "hpcg": 5529, "lulesh": 5546, "comd": 4668,
		"hpccg": 1563, "miniaero": 42056, "miniamr": 9957, "minife": 28010,
		"minimd": 4404, "lammps": 2273423, "openmx": 287381,
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if want, ok := wantLoC[r.App]; ok && r.LoC != want {
			t.Errorf("%s LoC = %d, want %d", r.App, r.LoC, want)
		}
		seen[r.App] = true
	}
	for app := range wantLoC {
		if !seen[app] {
			t.Errorf("app %s missing from Table 2", app)
		}
	}
	// lammps has 5 workloads, openmx 4.
	lammps, _ := Find("lammps")
	openmx, _ := Find("openmx")
	if len(lammps.Workloads) != 5 || len(openmx.Workloads) != 4 {
		t.Errorf("lammps/openmx workload counts: %d/%d", len(lammps.Workloads), len(openmx.Workloads))
	}
}

func TestTraitsCoverage(t *testing.T) {
	for _, ref := range AllRefs() {
		for _, sys := range []string{"x86-64", "aarch64"} {
			tr, err := TraitsFor(ref.ID(), sys)
			if err != nil {
				t.Errorf("missing traits: %v", err)
				continue
			}
			if tr.NativeSec <= 0 || tr.OrigOverNative <= 0 {
				t.Errorf("%s/%s: degenerate traits %+v", ref.ID(), sys, tr)
			}
			if tr.CommFrac < 0 || tr.CommFrac > 0.95 {
				t.Errorf("%s/%s: CommFrac out of range: %f", ref.ID(), sys, tr.CommFrac)
			}
		}
	}
	if _, err := TraitsFor("nonexistent", "x86-64"); err == nil {
		t.Error("missing workload accepted")
	}
}

func TestCalibrationTargets(t *testing.T) {
	// Average original-over-native improvement tracks the paper: 96.3%
	// on x86-64, 66.5% on AArch64 (within a loose band).
	for _, c := range []struct {
		sys     string
		wantMin float64
		wantMax float64
	}{
		{"x86-64", 0.85, 1.15},
		{"aarch64", 0.55, 0.85},
	} {
		sum := 0.0
		for _, ref := range AllRefs() {
			tr, err := TraitsFor(ref.ID(), c.sys)
			if err != nil {
				t.Fatal(err)
			}
			sum += tr.OrigOverNative - 1
		}
		avg := sum / float64(len(AllRefs()))
		if avg < c.wantMin || avg > c.wantMax {
			t.Errorf("%s: avg improvement = %.3f, want in [%.2f, %.2f]", c.sys, avg, c.wantMin, c.wantMax)
		}
	}
	// Native-time averages track Fig 9 (21.35s x86, 67.0s aarch64).
	for _, c := range []struct {
		sys    string
		lo, hi float64
	}{
		{"x86-64", 19, 24}, {"aarch64", 60, 75},
	} {
		sum := 0.0
		for _, ref := range AllRefs() {
			tr, _ := TraitsFor(ref.ID(), c.sys)
			sum += tr.NativeSec
		}
		avg := sum / float64(len(AllRefs()))
		if avg < c.lo || avg > c.hi {
			t.Errorf("%s: avg native time = %.2f, want in [%v, %v]", c.sys, avg, c.lo, c.hi)
		}
	}
	// Notable calibration anchors from the paper.
	eam, _ := TraitsFor("lammps.eam", "x86-64")
	if eam.OrigOverNative < 3.3 {
		t.Error("lammps.eam should carry the +253% x86 anchor")
	}
	hpccg, _ := TraitsFor("hpccg", "x86-64")
	if hpccg.OrigOverNative >= 1 {
		t.Error("hpccg must be the lone native regression")
	}
	luleshArm, _ := TraitsFor("lulesh", "aarch64")
	if luleshArm.OrigOverNative < 3.0 {
		t.Error("lulesh aarch64 should show the +231% communication anchor")
	}
	pt13, _ := TraitsFor("openmx.pt13", "x86-64")
	if pt13.LTOGain+pt13.PGOGain < 0.28 {
		t.Error("openmx.pt13 should be the best x86 LTO+PGO anchor (+30.4%)")
	}
	chain, _ := TraitsFor("lammps.chain", "x86-64")
	if chain.LTOGain+chain.PGOGain > -0.10 {
		t.Error("lammps.chain should be the worst x86 LTO+PGO anchor (-12.1%)")
	}
	hpcgArm, _ := TraitsFor("hpcg", "aarch64")
	if hpcgArm.LTOGain+hpcgArm.PGOGain > -0.13 {
		t.Error("hpcg should be the worst aarch64 LTO+PGO anchor (-14.9%)")
	}
	ljArm, _ := TraitsFor("lammps.lj", "aarch64")
	if ljArm.LTOGain+ljArm.PGOGain < 0.16 {
		t.Error("lammps.lj should be the best aarch64 LTO+PGO anchor (+17.7%)")
	}
}

func TestLTOPGOAverages(t *testing.T) {
	// Fig 10: optimized beats adapted by ~8% (x86) / ~5.6% (aarch64).
	for _, c := range []struct {
		sys    string
		lo, hi float64
	}{
		{"x86-64", 0.06, 0.11}, {"aarch64", 0.035, 0.08},
	} {
		sum := 0.0
		for _, ref := range AllRefs() {
			tr, _ := TraitsFor(ref.ID(), c.sys)
			sum += tr.LTOGain + tr.PGOGain
		}
		avg := sum / float64(len(AllRefs()))
		if avg < c.lo || avg > c.hi {
			t.Errorf("%s: avg LTO+PGO gain = %.4f, want in [%v, %v]", c.sys, avg, c.lo, c.hi)
		}
	}
}

func TestSourcesSizeAndDeterminism(t *testing.T) {
	for _, a := range Apps() {
		src := a.Sources(toolchain.ISAx86)
		if len(src) != a.NumSrcFiles+1 { // +1 header
			t.Errorf("%s: %d source files, want %d", a.Name, len(src), a.NumSrcFiles+1)
		}
		total := 0
		for _, content := range src {
			total += len(content)
		}
		target := a.SrcMiB * sysprofile.SizeUnit
		// Small trees carry fixed per-file overhead (headers, main).
		slack := target*0.3 + 350
		if float64(total) < target*0.9 || float64(total) > target+slack {
			t.Errorf("%s: source bytes = %d, target ~%.0f", a.Name, total, target)
		}
		// Deterministic.
		again := a.Sources(toolchain.ISAx86)
		for p, c := range src {
			if again[p] != c {
				t.Errorf("%s: source %s not deterministic", a.Name, p)
			}
		}
	}
}

func TestSourcePortabilityMarkers(t *testing.T) {
	lulesh, _ := Find("lulesh")
	src := lulesh.Sources(toolchain.ISAx86)
	joined := ""
	for _, c := range src {
		joined += c
	}
	if !strings.Contains(joined, "isa:x86-64") || !strings.Contains(joined, "COMT_PORTABLE") {
		t.Error("lulesh sources must carry guarded ISA-specific code")
	}
	hpl, _ := Find("hpl")
	joined = ""
	for _, c := range hpl.Sources(toolchain.ISAx86) {
		joined += c
	}
	if !strings.Contains(joined, "isa:x86-64") || strings.Contains(joined, "COMT_PORTABLE") {
		t.Error("hpl sources must carry mandatory (unguarded) ISA-specific code")
	}
	comd, _ := Find("comd")
	joined = ""
	for _, c := range comd.Sources(toolchain.ISAx86) {
		joined += c
	}
	if strings.Contains(joined, "isa:") {
		t.Error("comd sources should be fully portable")
	}
}

func TestContainerfileVariants(t *testing.T) {
	lulesh, _ := Find("lulesh")
	conv := lulesh.Containerfile(toolchain.ISAx86, false)
	comt := lulesh.Containerfile(toolchain.ISAx86, true)
	if !strings.Contains(conv, "FROM "+sysprofile.TagUbuntu) {
		t.Error("conventional script should use the stock base")
	}
	if !strings.Contains(comt, "FROM "+sysprofile.TagEnv) || !strings.Contains(comt, "FROM "+sysprofile.TagBase) {
		t.Error("coMtainer script should use Env/Base images (Figure 6)")
	}
	// Both must parse.
	for _, text := range []string{conv, comt} {
		if _, err := containerfile.Parse(text); err != nil {
			t.Errorf("generated Containerfile does not parse: %v\n%s", err, text)
		}
	}
	// The ARM variant of a guarded app opts into the portable path.
	arm := lulesh.Containerfile(toolchain.ISAArm, true)
	if !strings.Contains(arm, "-DCOMT_PORTABLE") {
		t.Error("ARM lulesh script missing the portable guard define")
	}
	// ISA-specific flag sets appear only on their ISA. lammps builds via
	// make, so its flags live in the generated Makefile.
	lammps, _ := Find("lammps")
	if !lammps.UseMake {
		t.Fatal("lammps should build through make")
	}
	if !strings.Contains(lammps.Containerfile(toolchain.ISAx86, true), "RUN make") {
		t.Error("lammps script should RUN make")
	}
	if !strings.Contains(lammps.Makefile(toolchain.ISAx86), "-mavx2") {
		t.Error("lammps x86 Makefile should use -mavx2")
	}
	if strings.Contains(lammps.Makefile(toolchain.ISAArm), "-mavx2") {
		t.Error("lammps arm Makefile must not use -mavx2")
	}
	// The Makefile itself parses and drives the pattern rule.
	hpcgScript := lammps.Makefile(toolchain.ISAx86)
	if !strings.Contains(hpcgScript, "%.o: %.cc") {
		t.Errorf("lammps Makefile missing pattern rule:\n%s", hpcgScript)
	}
}

func TestCrossISAApps(t *testing.T) {
	capable := CrossISAApps()
	names := map[string]bool{}
	for _, a := range capable {
		names[a.Name] = true
		if a.XBuildLines <= 0 {
			t.Errorf("%s: capable app missing xbuild effort", a.Name)
		}
	}
	for _, want := range []string{"hpcg", "lulesh", "comd", "hpccg", "miniamr", "minife", "minimd"} {
		if !names[want] {
			t.Errorf("%s should be cross-ISA capable", want)
		}
	}
	for _, not := range []string{"hpl", "miniaero", "lammps", "openmx"} {
		if names[not] {
			t.Errorf("%s should not be cross-ISA capable", not)
		}
	}
	// Paper: cross-building costs ~47 changed lines on average.
	sum := 0
	for _, a := range capable {
		sum += a.XBuildLines
	}
	avg := float64(sum) / float64(len(capable))
	if avg < 35 || avg > 60 {
		t.Errorf("avg xbuild lines = %.1f, want ~47", avg)
	}
}

func TestDataFiles(t *testing.T) {
	lammps, _ := Find("lammps")
	data := lammps.Data()
	if len(data) == 0 {
		t.Fatal("lammps should bundle data")
	}
	total := 0
	for _, b := range data {
		total += len(b)
	}
	if float64(total) < lammps.DataMiB*sysprofile.SizeUnit*0.95 {
		t.Errorf("lammps data bytes = %d", total)
	}
	comd, _ := Find("comd")
	if comd.Data() != nil {
		t.Error("comd should have no bundled data")
	}
}

func TestRefIDs(t *testing.T) {
	refs := AllRefs()
	ids := map[string]bool{}
	for _, r := range refs {
		if ids[r.ID()] {
			t.Errorf("duplicate workload id %s", r.ID())
		}
		ids[r.ID()] = true
	}
	if !ids["lulesh"] || !ids["lammps.lj"] || !ids["openmx.pt13"] {
		t.Errorf("expected ids missing: %v", ids)
	}
}
