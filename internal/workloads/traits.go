package workloads

import "fmt"

// Traits are the calibrated per-workload, per-system performance
// characteristics the analytical model consumes (DESIGN.md §4). The
// calibration targets come from the paper's reported percentages; the
// pipeline that decides *whether* each gain applies is the system under
// test.
type Traits struct {
	// NativeSec is the execution time of the natively built binary on 16
	// nodes (the Figure-9 "native" bar).
	NativeSec float64
	// OrigOverNative is T(original)/T(native) at 16 nodes — the
	// adaptability-issue gap this workload exhibits.
	OrigOverNative float64
	// LibShare apportions the compute-side gap between library quality
	// (libo) and compiler quality (cxxo): LibGain = LC^LibShare.
	LibShare float64
	// ExplicitLibGain/ExplicitCCGain override the auto-calibration when
	// non-zero (used for LULESH, whose Figure-3 decomposition is pinned).
	ExplicitLibGain float64
	ExplicitCCGain  float64
	// LTOGain / PGOGain are the fractional compute-side speedups of the
	// two advanced optimizations (negative = regression).
	LTOGain float64
	PGOGain float64
	// CommFrac is the fraction of native 16-node time spent in MPI
	// communication; AvgMsgKB parameterizes the alpha-beta fabric model.
	CommFrac float64
	AvgMsgKB float64
}

// traitKey is "workloadID|system".
func traitKey(id, system string) string { return id + "|" + system }

// traits maps workload+system to calibrated values. Workload IDs follow
// Ref.ID() ("lulesh", "lammps.lj", ...); systems are "x86-64"/"aarch64".
var traits = map[string]Traits{}

// reg registers the traits of one workload on both systems.
func reg(id string, x86, arm Traits) {
	traits[traitKey(id, "x86-64")] = x86
	traits[traitKey(id, "aarch64")] = arm
}

func init() {
	// The nine benchmarks.
	reg("hpl",
		Traits{NativeSec: 40, OrigOverNative: 2.10, LibShare: 0.70, LTOGain: 0.036, PGOGain: 0.024, CommFrac: 0.06, AvgMsgKB: 1024},
		Traits{NativeSec: 124, OrigOverNative: 1.70, LibShare: 0.70, LTOGain: 0.024, PGOGain: 0.016, CommFrac: 0.05, AvgMsgKB: 1024})
	reg("hpcg",
		Traits{NativeSec: 24, OrigOverNative: 1.55, LibShare: 0.55, LTOGain: 0.025, PGOGain: 0.015, CommFrac: 0.05, AvgMsgKB: 32},
		Traits{NativeSec: 75, OrigOverNative: 1.45, LibShare: 0.55, LTOGain: -0.090, PGOGain: -0.059, CommFrac: 0.05, AvgMsgKB: 32})
	reg("lulesh",
		Traits{NativeSec: 24, OrigOverNative: 1.156, ExplicitLibGain: 1.50, ExplicitCCGain: 1.333,
			LTOGain: 0.175, PGOGain: 0.096, CommFrac: 0.90, AvgMsgKB: 256},
		Traits{NativeSec: 74, OrigOverNative: 3.31, ExplicitLibGain: 2.20, ExplicitCCGain: 1.623,
			LTOGain: 0.16, PGOGain: 0.09, CommFrac: 0.90, AvgMsgKB: 256})
	reg("comd",
		Traits{NativeSec: 8, OrigOverNative: 1.60, LibShare: 0.45, LTOGain: 0.048, PGOGain: 0.032, CommFrac: 0.04, AvgMsgKB: 64},
		Traits{NativeSec: 25, OrigOverNative: 1.50, LibShare: 0.45, LTOGain: 0.036, PGOGain: 0.024, CommFrac: 0.04, AvgMsgKB: 64})
	reg("hpccg",
		// The lone regression: the vendor toolchain's aggressive
		// optimizations hurt this kernel (paper §5.2).
		Traits{NativeSec: 6, OrigOverNative: 0.92, LibShare: 0.40, LTOGain: 0.012, PGOGain: 0.008, CommFrac: 0.05, AvgMsgKB: 32},
		Traits{NativeSec: 19, OrigOverNative: 0.94, LibShare: 0.40, LTOGain: 0.018, PGOGain: 0.012, CommFrac: 0.05, AvgMsgKB: 32})
	reg("miniaero",
		Traits{NativeSec: 28, OrigOverNative: 1.75, LibShare: 0.40, LTOGain: 0.060, PGOGain: 0.040, CommFrac: 0.04, AvgMsgKB: 128},
		Traits{NativeSec: 88, OrigOverNative: 1.55, LibShare: 0.40, LTOGain: 0.030, PGOGain: 0.020, CommFrac: 0.04, AvgMsgKB: 128})
	reg("miniamr",
		Traits{NativeSec: 18, OrigOverNative: 1.50, LibShare: 0.40, LTOGain: 0.018, PGOGain: 0.012, CommFrac: 0.06, AvgMsgKB: 16},
		Traits{NativeSec: 56, OrigOverNative: 1.40, LibShare: 0.40, LTOGain: 0.012, PGOGain: 0.008, CommFrac: 0.05, AvgMsgKB: 16})
	reg("minife",
		Traits{NativeSec: 20, OrigOverNative: 1.80, LibShare: 0.60, LTOGain: 0.054, PGOGain: 0.036, CommFrac: 0.05, AvgMsgKB: 64},
		Traits{NativeSec: 62, OrigOverNative: 1.60, LibShare: 0.60, LTOGain: 0.024, PGOGain: 0.016, CommFrac: 0.05, AvgMsgKB: 64})
	reg("minimd",
		Traits{NativeSec: 9, OrigOverNative: 1.65, LibShare: 0.40, LTOGain: 0.030, PGOGain: 0.020, CommFrac: 0.03, AvgMsgKB: 64},
		Traits{NativeSec: 28, OrigOverNative: 1.45, LibShare: 0.40, LTOGain: 0.048, PGOGain: 0.032, CommFrac: 0.03, AvgMsgKB: 64})

	// LAMMPS: the paper's maximum adaptation win (+253% on x86-64,
	// workload eam) and the x86 PGO regression (chain, -12.1%).
	reg("lammps.chain",
		Traits{NativeSec: 16, OrigOverNative: 2.30, LibShare: 0.50, LTOGain: -0.073, PGOGain: -0.048, CommFrac: 0.05, AvgMsgKB: 128},
		Traits{NativeSec: 50, OrigOverNative: 1.75, LibShare: 0.50, LTOGain: 0.012, PGOGain: 0.008, CommFrac: 0.05, AvgMsgKB: 128})
	reg("lammps.chute",
		Traits{NativeSec: 15, OrigOverNative: 2.10, LibShare: 0.50, LTOGain: 0.030, PGOGain: 0.020, CommFrac: 0.05, AvgMsgKB: 128},
		Traits{NativeSec: 47, OrigOverNative: 1.65, LibShare: 0.50, LTOGain: 0.036, PGOGain: 0.024, CommFrac: 0.05, AvgMsgKB: 128})
	reg("lammps.eam",
		Traits{NativeSec: 30, OrigOverNative: 3.53, LibShare: 0.50, LTOGain: 0.060, PGOGain: 0.040, CommFrac: 0.05, AvgMsgKB: 128},
		Traits{NativeSec: 93, OrigOverNative: 1.90, LibShare: 0.50, LTOGain: 0.054, PGOGain: 0.036, CommFrac: 0.05, AvgMsgKB: 128})
	reg("lammps.lj",
		Traits{NativeSec: 10, OrigOverNative: 2.00, LibShare: 0.50, LTOGain: 0.048, PGOGain: 0.032, CommFrac: 0.05, AvgMsgKB: 128},
		// The best AArch64 optimization result: +17.7%.
		Traits{NativeSec: 31, OrigOverNative: 1.70, LibShare: 0.50, LTOGain: 0.106, PGOGain: 0.071, CommFrac: 0.05, AvgMsgKB: 128})
	reg("lammps.rhodo",
		Traits{NativeSec: 32, OrigOverNative: 2.50, LibShare: 0.50, LTOGain: 0.072, PGOGain: 0.048, CommFrac: 0.06, AvgMsgKB: 128},
		Traits{NativeSec: 99, OrigOverNative: 1.85, LibShare: 0.50, LTOGain: 0.042, PGOGain: 0.028, CommFrac: 0.06, AvgMsgKB: 128})

	// OpenMX: dense-linear-algebra heavy, the best x86 optimization win
	// (pt13, +30.4%).
	reg("openmx.awf5e",
		Traits{NativeSec: 21, OrigOverNative: 2.20, LibShare: 0.65, LTOGain: 0.090, PGOGain: 0.060, CommFrac: 0.08, AvgMsgKB: 256},
		Traits{NativeSec: 65, OrigOverNative: 1.80, LibShare: 0.65, LTOGain: 0.048, PGOGain: 0.032, CommFrac: 0.08, AvgMsgKB: 256})
	reg("openmx.awf7e",
		Traits{NativeSec: 28, OrigOverNative: 2.30, LibShare: 0.65, LTOGain: 0.108, PGOGain: 0.072, CommFrac: 0.08, AvgMsgKB: 256},
		Traits{NativeSec: 87, OrigOverNative: 1.85, LibShare: 0.65, LTOGain: 0.060, PGOGain: 0.040, CommFrac: 0.08, AvgMsgKB: 256})
	reg("openmx.nitro",
		Traits{NativeSec: 18, OrigOverNative: 2.00, LibShare: 0.65, LTOGain: 0.054, PGOGain: 0.036, CommFrac: 0.07, AvgMsgKB: 256},
		Traits{NativeSec: 56, OrigOverNative: 1.70, LibShare: 0.65, LTOGain: 0.030, PGOGain: 0.020, CommFrac: 0.07, AvgMsgKB: 256})
	reg("openmx.pt13",
		Traits{NativeSec: 38, OrigOverNative: 2.997, LibShare: 0.65, LTOGain: 0.182, PGOGain: 0.122, CommFrac: 0.08, AvgMsgKB: 256},
		Traits{NativeSec: 118, OrigOverNative: 1.95, LibShare: 0.65, LTOGain: 0.072, PGOGain: 0.048, CommFrac: 0.08, AvgMsgKB: 256})
}

// TraitsFor returns the calibrated traits of a workload on a system.
func TraitsFor(id, system string) (Traits, error) {
	t, ok := traits[traitKey(id, system)]
	if !ok {
		return Traits{}, fmt.Errorf("workloads: no traits for %s on %s", id, system)
	}
	return t, nil
}

// Table2Row is one cell pair of the paper's Table 2.
type Table2Row struct {
	App      string
	Workload string
	LoC      int
}

// Table2 returns the workload listing.
func Table2() []Table2Row {
	var rows []Table2Row
	for _, r := range AllRefs() {
		rows = append(rows, Table2Row{App: r.App.Name, Workload: r.Workload, LoC: r.App.ReportedLoC})
	}
	return rows
}

// KeyLibSOs returns the shared-object base names whose optimization state
// drives the app's library gain. The C++ runtime participates implicitly.
func (a *App) KeyLibSOs() []string {
	out := []string{}
	for _, l := range a.Libs {
		out = append(out, "lib"+l)
	}
	if a.Language == "c++" {
		out = append(out, "libstdc++")
	}
	return out
}
