package registry

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"comtainer/internal/fsim"
	"comtainer/internal/oci"
)

func testImageRepo(t *testing.T) (*oci.Repository, string) {
	t.Helper()
	repo := oci.NewRepository()
	l1 := fsim.New()
	l1.WriteFile("/bin/sh", []byte("shell"), 0o755)
	l2 := fsim.New()
	l2.WriteFile("/app/demo", []byte("payload"), 0o755)
	desc, err := oci.WriteImage(repo.Store, oci.ImageConfig{
		Architecture: "amd64", OS: "linux",
		Config: oci.ExecConfig{Entrypoint: []string{"/app/demo"}},
	}, []*fsim.FS{l1, l2})
	if err != nil {
		t.Fatal(err)
	}
	repo.Tag("demo.dist", desc)
	return repo, "demo.dist"
}

func TestPushPullRoundTrip(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	if err := client.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}

	src, tag := testImageRepo(t)
	if err := client.Push(context.Background(), src, tag, "user/demo", "v1"); err != nil {
		t.Fatal(err)
	}
	if len(srv.Tags()) != 1 || srv.Tags()[0] != "user/demo:v1" {
		t.Errorf("server tags = %v", srv.Tags())
	}

	dst := oci.NewRepository()
	if err := client.Pull(context.Background(), dst, "user/demo", "v1", "demo.pulled"); err != nil {
		t.Fatal(err)
	}
	img, err := dst.LoadByTag("demo.pulled")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	got, err := flat.ReadFile("/app/demo")
	if err != nil || string(got) != "payload" {
		t.Errorf("pulled content = %q, %v", got, err)
	}
	// Digest-identical manifest on both sides.
	srcDesc, _ := src.Resolve(tag)
	dstDesc, _ := dst.Resolve("demo.pulled")
	if srcDesc.Digest != dstDesc.Digest {
		t.Error("manifest digest changed in transit")
	}
}

func TestPullUnknown(t *testing.T) {
	ts := httptest.NewServer(NewServer().Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	if err := client.Pull(context.Background(), oci.NewRepository(), "ghost", "v1", "x"); err == nil {
		t.Error("pulled a nonexistent image")
	}
}

func TestManifestByDigest(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	src, tag := testImageRepo(t)
	if err := client.Push(context.Background(), src, tag, "demo", "latest"); err != nil {
		t.Fatal(err)
	}
	desc, _ := src.Resolve(tag)
	resp, err := http.Get(ts.URL + "/v2/demo/manifests/" + string(desc.Digest))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET by digest: %s", resp.Status)
	}
}

func TestBlobUploadRejectsBadDigest(t *testing.T) {
	ts := httptest.NewServer(NewServer().Handler())
	defer ts.Close()
	req, _ := http.NewRequest(http.MethodPut,
		ts.URL+"/v2/x/blobs/uploads?digest=sha256:"+strings.Repeat("0", 64),
		strings.NewReader("content that does not match"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusCreated {
		t.Error("mismatched digest accepted")
	}
}

func TestBadRoutes(t *testing.T) {
	ts := httptest.NewServer(NewServer().Handler())
	defer ts.Close()
	for _, p := range []string{"/v2/onlyname", "/v2/x/blobs/not-a-digest"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("GET %s succeeded", p)
		}
	}
}

func TestListTags(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	src, tag := testImageRepo(t)
	for _, v := range []string{"v1", "v2", "latest"} {
		if err := client.Push(context.Background(), src, tag, "team/app", v); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Push(context.Background(), src, tag, "other/thing", "v9"); err != nil {
		t.Fatal(err)
	}
	tags, err := client.ListTags(context.Background(), "team/app")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"latest", "v1", "v2"}
	if len(tags) != 3 || tags[0] != want[0] || tags[1] != want[1] || tags[2] != want[2] {
		t.Errorf("tags = %v, want %v", tags, want)
	}
	empty, err := client.ListTags(context.Background(), "nobody/nothing")
	if err != nil || len(empty) != 0 {
		t.Errorf("empty repo tags = %v, %v", empty, err)
	}
}

func TestConcurrentPushPull(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	src, tag := testImageRepo(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(ts.URL)
			name := fmt.Sprintf("user%d/app", i)
			if err := c.Push(context.Background(), src, tag, name, "v1"); err != nil {
				errs <- err
				return
			}
			dst := oci.NewRepository()
			if err := c.Pull(context.Background(), dst, name, "v1", "local"); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if len(srv.Tags()) != 8 {
		t.Errorf("server holds %d tags, want 8", len(srv.Tags()))
	}
}
