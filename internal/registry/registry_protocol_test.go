package registry

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"comtainer/internal/digest"
	"comtainer/internal/oci"
)

// TestHeadManifestHeadersNoBody: HEAD /v2/<name>/manifests/<ref> must
// return the digest, type and length headers with an empty body.
func TestHeadManifestHeadersNoBody(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	src, tag := testImageRepo(t)
	client := NewClient(ts.URL)
	if err := client.Push(context.Background(), src, tag, "demo", "v1"); err != nil {
		t.Fatal(err)
	}
	desc, _ := src.Resolve(tag)
	manifestBytes, _ := src.Store.Get(desc.Digest)

	req, _ := http.NewRequest(http.MethodHead, ts.URL+"/v2/demo/manifests/v1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD manifest: %s", resp.Status)
	}
	if got := resp.Header.Get("Docker-Content-Digest"); got != string(desc.Digest) {
		t.Errorf("Docker-Content-Digest = %q, want %q", got, desc.Digest)
	}
	if got := resp.Header.Get("Content-Type"); got != oci.MediaTypeManifest {
		t.Errorf("Content-Type = %q", got)
	}
	if got := resp.Header.Get("Content-Length"); got != strconv.Itoa(len(manifestBytes)) {
		t.Errorf("Content-Length = %q, want %d", got, len(manifestBytes))
	}
	body, _ := io.ReadAll(resp.Body)
	if len(body) != 0 {
		t.Errorf("HEAD returned %d body bytes", len(body))
	}
}

// TestHeadBlobHeaders: HEAD blobs must carry digest and length so
// clients can preallocate.
func TestHeadBlobHeaders(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	content := []byte("blob with a knowable size")
	d, err := distribIngest(srv, content)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodHead, ts.URL+"/v2/x/blobs/"+string(d), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD blob: %s", resp.Status)
	}
	if got := resp.Header.Get("Docker-Content-Digest"); got != string(d) {
		t.Errorf("Docker-Content-Digest = %q", got)
	}
	if got := resp.Header.Get("Content-Length"); got != strconv.Itoa(len(content)) {
		t.Errorf("Content-Length = %q, want %d", got, len(content))
	}
}

func distribIngest(srv *Server, content []byte) (digest.Digest, error) {
	d, _, err := srv.Blobs().Ingest(bytes.NewReader(content), "")
	return d, err
}

// TestGetBlobContentLengthAndRange covers explicit Content-Length on
// full GETs and 206 partial responses for Range requests.
func TestGetBlobContentLengthAndRange(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	content := []byte("0123456789abcdefghij")
	d, err := distribIngest(srv, content)
	if err != nil {
		t.Fatal(err)
	}
	// Full GET.
	resp, err := http.Get(ts.URL + "/v2/x/blobs/" + string(d))
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Length"); got != strconv.Itoa(len(content)) {
		t.Errorf("Content-Length = %q, want %d", got, len(content))
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(body, content) {
		t.Error("full GET content mismatch")
	}
	// Range GETs.
	for _, tc := range []struct {
		rng, want, contentRange string
	}{
		{"bytes=5-9", "56789", "bytes 5-9/20"},
		{"bytes=15-", "fghij", "bytes 15-19/20"},
		{"bytes=10-99", "abcdefghij", "bytes 10-19/20"},
	} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v2/x/blobs/"+string(d), nil)
		req.Header.Set("Range", tc.rng)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusPartialContent {
			t.Errorf("Range %q: status %s", tc.rng, resp.Status)
		}
		if string(body) != tc.want {
			t.Errorf("Range %q: body %q, want %q", tc.rng, body, tc.want)
		}
		if got := resp.Header.Get("Content-Range"); got != tc.contentRange {
			t.Errorf("Range %q: Content-Range %q, want %q", tc.rng, got, tc.contentRange)
		}
	}
	// Unsatisfiable range.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v2/x/blobs/"+string(d), nil)
	req.Header.Set("Range", "bytes=99-")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Errorf("out-of-bounds range: status %s", resp.Status)
	}
}

// TestPutManifestRejectsMissingBlobs: a manifest referencing absent
// blobs must be rejected with 400 naming the missing digest.
func TestPutManifestRejectsMissingBlobs(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	missing := digest.FromString("never uploaded")
	manifest := fmt.Sprintf(`{"schemaVersion":2,"mediaType":%q,"config":{"mediaType":%q,"digest":%q,"size":5},"layers":[]}`,
		oci.MediaTypeManifest, oci.MediaTypeConfig, missing)
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v2/app/manifests/v1", strings.NewReader(manifest))
	req.Header.Set("Content-Type", oci.MediaTypeManifest)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dangling manifest accepted: %s", resp.Status)
	}
	if !strings.Contains(string(body), string(missing)) {
		t.Errorf("400 body %q does not name the missing digest", body)
	}
	if len(srv.Tags()) != 0 {
		t.Error("rejected manifest was tagged")
	}
}

// TestResumableUpload drives the session protocol over raw HTTP: a
// chunk lands, a mis-aligned chunk is refused with 416 plus the
// committed range, the client re-queries the offset and completes.
func TestResumableUpload(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	content := []byte("the quick brown fox jumps over the lazy dog")
	d := digest.FromBytes(content)

	// Start a session.
	resp, err := http.Post(ts.URL+"/v2/app/blobs/uploads/", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST upload: %s", resp.Status)
	}
	loc := ts.URL + resp.Header.Get("Location")

	// First chunk.
	chunk1 := content[:16]
	req, _ := http.NewRequest(http.MethodPatch, loc, bytes.NewReader(chunk1))
	req.Header.Set("Content-Range", "0-15")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("PATCH chunk 1: %s", resp.Status)
	}
	if got := resp.Header.Get("Range"); got != "0-15" {
		t.Errorf("Range after chunk 1 = %q, want 0-15", got)
	}

	// Simulate an interrupted transfer: the client re-sends from the
	// wrong offset and must get 416 with the committed range.
	req, _ = http.NewRequest(http.MethodPatch, loc, bytes.NewReader(content[20:]))
	req.Header.Set("Content-Range", fmt.Sprintf("20-%d", len(content)-1))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("mis-aligned PATCH: %s, want 416", resp.Status)
	}
	if got := resp.Header.Get("Range"); got != "0-15" {
		t.Errorf("416 Range = %q, want 0-15", got)
	}

	// Recover the offset via GET, resume from it.
	resp, err = http.Get(loc)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("GET session: %s", resp.Status)
	}
	rng := resp.Header.Get("Range")
	var end int
	if _, err := fmt.Sscanf(rng, "0-%d", &end); err != nil {
		t.Fatalf("unparseable session range %q", rng)
	}
	offset := end + 1
	req, _ = http.NewRequest(http.MethodPatch, loc, bytes.NewReader(content[offset:]))
	req.Header.Set("Content-Range", fmt.Sprintf("%d-%d", offset, len(content)-1))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resumed PATCH: %s", resp.Status)
	}

	// Finalize and verify.
	req, _ = http.NewRequest(http.MethodPut, loc+"?digest="+string(d), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT finalize: %s", resp.Status)
	}
	if got := resp.Header.Get("Docker-Content-Digest"); got != string(d) {
		t.Errorf("finalize digest = %q", got)
	}
	if !srv.Blobs().Has(d) {
		t.Error("blob absent after resumable upload")
	}
}

// TestUploadFinalizeRejectsBadDigest: a session whose content does not
// hash to the declared digest must fail the PUT.
func TestUploadFinalizeRejectsBadDigest(t *testing.T) {
	ts := httptest.NewServer(NewServer().Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v2/app/blobs/uploads/", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	loc := ts.URL + resp.Header.Get("Location")
	req, _ := http.NewRequest(http.MethodPatch, loc, strings.NewReader("actual bytes"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	req, _ = http.NewRequest(http.MethodPut, loc+"?digest="+string(digest.FromString("other bytes")), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched finalize: %s, want 400", resp.Status)
	}
}

// TestRestartPersistence: push to a disk-backed registry, tear the
// server down, reopen the same directory, and pull — the acceptance
// path for `comtainer-registry -data`.
func TestRestartPersistence(t *testing.T) {
	dir := t.TempDir()
	srv1, err := NewServerAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	src, tag := testImageRepo(t)
	if err := NewClient(ts1.URL).Push(context.Background(), src, tag, "user/demo", "v1"); err != nil {
		t.Fatal(err)
	}
	ts1.Close() // registry process dies

	srv2, err := NewServerAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if got := srv2.Tags(); len(got) != 1 || got[0] != "user/demo:v1" {
		t.Fatalf("tags after restart = %v", got)
	}
	dst := oci.NewRepository()
	if err := NewClient(ts2.URL).Pull(context.Background(), dst, "user/demo", "v1", "demo.pulled"); err != nil {
		t.Fatal(err)
	}
	srcDesc, _ := src.Resolve(tag)
	dstDesc, _ := dst.Resolve("demo.pulled")
	if srcDesc.Digest != dstDesc.Digest {
		t.Error("manifest digest changed across registry restart")
	}
	img, err := dst.LoadByTag("demo.pulled")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := img.Flatten(); err != nil {
		t.Errorf("pulled image does not flatten: %v", err)
	}
}

// TestConcurrentPushPullSharedImage hammers one disk-backed server
// with parallel pushes and pulls of the same image (run under -race
// via scripts/check.sh).
func TestConcurrentPushPullSharedImage(t *testing.T) {
	srv, err := NewServerAt(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	src, tag := testImageRepo(t)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(ts.URL)
			c.Workers = 3
			// Everyone pushes the same image under the same name…
			if err := c.Push(context.Background(), src, tag, "shared/app", "v1"); err != nil {
				errs <- err
				return
			}
			// …and pulls it back into a private store.
			dst := oci.NewRepository()
			if err := c.Pull(context.Background(), dst, "shared/app", "v1", "local"); err != nil {
				errs <- err
				return
			}
			want, _ := src.Resolve(tag)
			got, err := dst.Resolve("local")
			if err != nil || got.Digest != want.Digest {
				errs <- fmt.Errorf("worker %d: digest mismatch: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServerGC: unreachable blobs are dropped, tagged images survive
// and remain pullable.
func TestServerGC(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	src, tag := testImageRepo(t)
	client := NewClient(ts.URL)
	if err := client.Push(context.Background(), src, tag, "keep/app", "v1"); err != nil {
		t.Fatal(err)
	}
	orphan, err := distribIngest(srv, []byte("orphaned blob"))
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := srv.GC()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if srv.Blobs().Has(orphan) {
		t.Error("orphan survived GC")
	}
	dst := oci.NewRepository()
	if err := client.Pull(context.Background(), dst, "keep/app", "v1", "x"); err != nil {
		t.Errorf("tagged image unpullable after GC: %v", err)
	}
}
