// Package registry implements a minimal OCI distribution registry over
// HTTP (stdlib only) plus a push/pull client — the repository hop of the
// coMtainer workflow ("images are then distributed via repositories",
// paper §1). It supports the subset of the distribution API the workflow
// exercises: blob upload/download and manifest push/pull by tag or digest.
package registry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"comtainer/internal/digest"
	"comtainer/internal/oci"
)

// Server is an in-memory OCI registry.
type Server struct {
	mu    sync.RWMutex
	blobs *oci.Store
	// tags maps "name:tag" -> manifest descriptor.
	tags map[string]oci.Descriptor
}

// NewServer returns an empty registry server.
func NewServer() *Server {
	return &Server{blobs: oci.NewStore(), tags: make(map[string]oci.Descriptor)}
}

// Handler returns the HTTP handler implementing the distribution API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v2/", s.route)
	return mux
}

// route dispatches /v2/<name>/(manifests|blobs)/<ref> paths.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v2/")
	if rest == "" {
		w.WriteHeader(http.StatusOK)
		return
	}
	// Tag enumeration: GET /v2/<name>/tags/list.
	if strings.HasSuffix(rest, "/tags/list") && r.Method == http.MethodGet {
		s.listTags(w, strings.TrimSuffix(rest, "/tags/list"))
		return
	}
	// Find the resource kind separator from the right so names may
	// contain slashes.
	var name, kind, ref string
	for _, k := range []string{"/manifests/", "/blobs/"} {
		if i := strings.LastIndex(rest, k); i >= 0 {
			name, kind, ref = rest[:i], strings.Trim(k, "/"), rest[i+len(k):]
			break
		}
	}
	if name == "" || ref == "" {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	switch {
	case kind == "manifests" && r.Method == http.MethodGet:
		s.getManifest(w, name, ref)
	case kind == "manifests" && r.Method == http.MethodHead:
		s.getManifest(w, name, ref)
	case kind == "manifests" && r.Method == http.MethodPut:
		s.putManifest(w, r, name, ref)
	case kind == "blobs" && r.Method == http.MethodGet:
		s.getBlob(w, ref)
	case kind == "blobs" && r.Method == http.MethodHead:
		s.headBlob(w, ref)
	case kind == "blobs" && r.Method == http.MethodPut && strings.HasPrefix(ref, "uploads"):
		s.putBlob(w, r)
	default:
		http.Error(w, "unsupported operation", http.StatusMethodNotAllowed)
	}
}

func (s *Server) getManifest(w http.ResponseWriter, name, ref string) {
	s.mu.RLock()
	desc, ok := s.tags[name+":"+ref]
	s.mu.RUnlock()
	if !ok {
		// Maybe a digest reference.
		if d, err := digest.Parse(ref); err == nil && s.blobs.Has(d) {
			desc = oci.Descriptor{MediaType: oci.MediaTypeManifest, Digest: d}
			ok = true
		}
	}
	if !ok {
		http.Error(w, "manifest unknown", http.StatusNotFound)
		return
	}
	b, err := s.blobs.Get(desc.Digest)
	if err != nil {
		http.Error(w, "manifest blob missing", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", oci.MediaTypeManifest)
	w.Header().Set("Docker-Content-Digest", string(desc.Digest))
	_, _ = w.Write(b)
}

func (s *Server) putManifest(w http.ResponseWriter, r *http.Request, name, ref string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 10<<20))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	d := s.blobs.Put(body)
	s.mu.Lock()
	s.tags[name+":"+ref] = oci.Descriptor{
		MediaType: oci.MediaTypeManifest,
		Digest:    d,
		Size:      int64(len(body)),
	}
	s.mu.Unlock()
	w.Header().Set("Docker-Content-Digest", string(d))
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) getBlob(w http.ResponseWriter, ref string) {
	d, err := digest.Parse(ref)
	if err != nil {
		http.Error(w, "invalid digest", http.StatusBadRequest)
		return
	}
	b, err := s.blobs.Get(d)
	if err != nil {
		http.Error(w, "blob unknown", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Docker-Content-Digest", string(d))
	_, _ = w.Write(b)
}

func (s *Server) headBlob(w http.ResponseWriter, ref string) {
	d, err := digest.Parse(ref)
	if err != nil || !s.blobs.Has(d) {
		w.WriteHeader(http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (s *Server) putBlob(w http.ResponseWriter, r *http.Request) {
	want := r.URL.Query().Get("digest")
	d, err := digest.Parse(want)
	if err != nil {
		http.Error(w, "invalid digest", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<30))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	if err := s.blobs.PutVerified(body, d); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Docker-Content-Digest", string(d))
	w.WriteHeader(http.StatusCreated)
}

// listTags serves the distribution tags/list endpoint.
func (s *Server) listTags(w http.ResponseWriter, name string) {
	s.mu.RLock()
	var tags []string
	for k := range s.tags {
		if n, tag, ok := strings.Cut(k, ":"); ok && n == name {
			tags = append(tags, tag)
		}
	}
	s.mu.RUnlock()
	sort.Strings(tags)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Name string   `json:"name"`
		Tags []string `json:"tags"`
	}{Name: name, Tags: tags})
}

// Tags lists the known "name:tag" keys (for inspection).
func (s *Server) Tags() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tags))
	for k := range s.tags {
		out = append(out, k)
	}
	return out
}

// --- Client ---

// Client pushes and pulls images against a registry base URL
// (e.g. "http://127.0.0.1:5000").
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient returns a client for the registry at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: http.DefaultClient}
}

func (c *Client) url(parts ...string) string {
	return c.Base + "/v2/" + strings.Join(parts, "/")
}

// Ping checks the registry is alive.
func (c *Client) Ping() error {
	resp, err := c.HTTP.Get(c.Base + "/v2/")
	if err != nil {
		return fmt.Errorf("registry: ping: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("registry: ping: status %s", resp.Status)
	}
	return nil
}

// pushBlob uploads one blob (monolithic PUT).
func (c *Client) pushBlob(name string, content []byte) error {
	d := digest.FromBytes(content)
	req, err := http.NewRequest(http.MethodPut,
		c.url(name, "blobs", "uploads")+"?digest="+string(d),
		strings.NewReader(string(content)))
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("registry: uploading blob %s: %w", d.Short(), err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("registry: uploading blob %s: status %s", d.Short(), resp.Status)
	}
	return nil
}

// Push uploads the image tagged localTag in repo to the registry as
// name:tag — all referenced blobs first, then the manifest.
func (c *Client) Push(repo *oci.Repository, localTag, name, tag string) error {
	desc, err := repo.Resolve(localTag)
	if err != nil {
		return err
	}
	m, err := oci.LoadManifest(repo.Store, desc.Digest)
	if err != nil {
		return err
	}
	refs := append([]oci.Descriptor{m.Config}, m.Layers...)
	for _, rd := range refs {
		b, err := repo.Store.Get(rd.Digest)
		if err != nil {
			return err
		}
		if err := c.pushBlob(name, b); err != nil {
			return err
		}
	}
	manifestBytes, err := repo.Store.Get(desc.Digest)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, c.url(name, "manifests", tag),
		strings.NewReader(string(manifestBytes)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", oci.MediaTypeManifest)
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("registry: pushing manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("registry: pushing manifest: status %s", resp.Status)
	}
	return nil
}

// fetch retrieves a URL body.
func (c *Client) fetch(url string) ([]byte, string, error) {
	resp, err := c.HTTP.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("registry: GET %s: status %s", url, resp.Status)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		return nil, "", err
	}
	return b, resp.Header.Get("Docker-Content-Digest"), nil
}

// ListTags returns the tags of a repository name on the registry, sorted.
func (c *Client) ListTags(name string) ([]string, error) {
	body, _, err := c.fetch(c.url(name, "tags", "list"))
	if err != nil {
		return nil, err
	}
	var out struct {
		Tags []string `json:"tags"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("registry: decoding tags list: %w", err)
	}
	return out.Tags, nil
}

// Pull downloads name:tag from the registry into repo under localTag.
func (c *Client) Pull(repo *oci.Repository, name, tag, localTag string) error {
	manifestBytes, dgst, err := c.fetch(c.url(name, "manifests", tag))
	if err != nil {
		return err
	}
	md := digest.FromBytes(manifestBytes)
	if dgst != "" && dgst != string(md) {
		return fmt.Errorf("registry: manifest digest mismatch: header %s, content %s", dgst, md)
	}
	repo.Store.Put(manifestBytes)
	m, err := oci.LoadManifest(repo.Store, md)
	if err != nil {
		return err
	}
	for _, rd := range append([]oci.Descriptor{m.Config}, m.Layers...) {
		if repo.Store.Has(rd.Digest) {
			continue
		}
		b, _, err := c.fetch(c.url(name, "blobs", string(rd.Digest)))
		if err != nil {
			return err
		}
		if err := repo.Store.PutVerified(b, rd.Digest); err != nil {
			return fmt.Errorf("registry: corrupt blob from server: %w", err)
		}
	}
	repo.Tag(localTag, oci.Descriptor{
		MediaType: oci.MediaTypeManifest,
		Digest:    md,
		Size:      int64(len(manifestBytes)),
	})
	return nil
}
