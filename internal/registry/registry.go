// Package registry implements an OCI distribution registry over HTTP
// (stdlib only) plus a push/pull client — the repository hop of the
// coMtainer workflow ("images are then distributed via repositories",
// paper §1). The server mounts any distrib.Store, so it runs either
// fully in memory (oci.Store) or persistently on disk
// (distrib.DiskStore), and speaks the distribution upload protocol:
// resumable POST/PATCH/PUT blob upload sessions, HTTP Range blob GETs,
// and manifest push/pull by tag or digest, including manifest lists.
package registry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"comtainer/internal/digest"
	"comtainer/internal/distrib"
	"comtainer/internal/oci"
)

// maxManifestSize bounds manifest documents; blobs are unbounded
// (streamed to the store, never buffered whole).
const maxManifestSize = 16 << 20

// DefaultGCGrace is how long a freshly committed blob is protected
// from GC even while unreferenced — long enough for the push that
// committed it to finish uploading siblings and register the manifest.
const DefaultGCGrace = time.Minute

// CommitHook observes committed writes before they are acknowledged.
// A fleet shard leader mounts one to replicate every commit to its
// followers: the handler only responds 201 once the hook returns nil,
// so an acknowledged write is durable on the follower too. A hook
// error turns into a 503 (and the just-ingested blob is rolled back
// when this request introduced it), so clients retry rather than
// treat an unreplicated write as pushed.
type CommitHook interface {
	// BlobCommitted runs after blob d landed in the store.
	BlobCommitted(ctx context.Context, d digest.Digest) error
	// ManifestCommitted runs after a manifest blob landed, before the
	// tag (if any) is registered locally. body is the manifest
	// document, ref the reference it was pushed under (tag or digest).
	ManifestCommitted(ctx context.Context, name, ref, mediaType string, body []byte) error
}

// Server is an OCI registry over a pluggable blob and tag store.
type Server struct {
	// TrustReferences skips the referenced-blobs-present check on
	// manifest PUTs. Fleet shards run with it set: blobs are
	// partitioned across shards by digest while manifests are fanned
	// out to every shard, so the fleet-wide referential check belongs
	// to the proxy, not the individual shard.
	TrustReferences bool
	// GCGrace is how long a freshly committed blob survives GC even
	// while unreferenced (DefaultGCGrace when zero; negative disables
	// the protection entirely).
	GCGrace time.Duration

	blobs   distrib.Store
	refs    distrib.TagStore
	uploads *distrib.UploadManager

	hookMu sync.Mutex
	hook   CommitHook

	recentMu sync.Mutex
	recent   map[digest.Digest]time.Time
}

// NewServer returns an in-memory registry server.
func NewServer() *Server {
	return &Server{
		blobs:   oci.NewStore(),
		refs:    distrib.NewMemTags(),
		uploads: distrib.NewUploadManager(""),
	}
}

// NewServerAt returns a registry server persisted under dir: blobs in
// a sharded distrib.DiskStore, tags one file per reference, upload
// sessions spooled to disk. Reopening the same dir after a restart
// serves everything previously pushed.
func NewServerAt(dir string) (*Server, error) {
	blobs, err := distrib.NewDiskStore(dir)
	if err != nil {
		return nil, err
	}
	refs, err := distrib.NewDiskTags(dir)
	if err != nil {
		return nil, err
	}
	// Referential crash recovery: a tag whose manifest never committed
	// (crash between ref write and blob rename) must not survive a
	// restart, or every pull of it would 500.
	if _, err := distrib.SweepDanglingRefs(refs, blobs); err != nil {
		return nil, err
	}
	return &Server{
		blobs:   blobs,
		refs:    refs,
		uploads: distrib.NewUploadManager(filepath.Join(dir, "uploads")),
	}, nil
}

// NewServerWith returns a server over caller-provided stores.
func NewServerWith(blobs distrib.Store, refs distrib.TagStore) *Server {
	return &Server{blobs: blobs, refs: refs, uploads: distrib.NewUploadManager("")}
}

// Blobs exposes the mounted blob store (for inspection and GC).
func (s *Server) Blobs() distrib.Store { return s.blobs }

// SetCommitHook installs (or, with nil, removes) the commit hook.
// Safe to call while the server is handling requests.
func (s *Server) SetCommitHook(h CommitHook) {
	s.hookMu.Lock()
	s.hook = h
	s.hookMu.Unlock()
}

func (s *Server) commitHook() CommitHook {
	s.hookMu.Lock()
	defer s.hookMu.Unlock()
	return s.hook
}

// replicated reports whether the request is intra-fleet replication
// traffic, which must not re-enter the commit hook.
func replicated(r *http.Request) bool {
	return r.Header.Get(distrib.ReplicatedHeader) != ""
}

func (s *Server) gcGrace() time.Duration {
	switch {
	case s.GCGrace > 0:
		return s.GCGrace
	case s.GCGrace < 0:
		return 0
	}
	return DefaultGCGrace
}

// noteCommit pins d against GC for the grace window and sweeps pins
// that have aged out.
func (s *Server) noteCommit(d digest.Digest) {
	grace := s.gcGrace()
	if grace <= 0 {
		return
	}
	now := time.Now()
	s.recentMu.Lock()
	if s.recent == nil {
		s.recent = make(map[digest.Digest]time.Time)
	}
	cutoff := now.Add(-grace)
	for old, at := range s.recent {
		if at.Before(cutoff) {
			delete(s.recent, old)
		}
	}
	s.recent[d] = now
	s.recentMu.Unlock()
}

// recentlyCommitted reports whether d is still inside its GC grace
// window.
func (s *Server) recentlyCommitted(d digest.Digest) bool {
	grace := s.gcGrace()
	if grace <= 0 {
		return false
	}
	s.recentMu.Lock()
	at, ok := s.recent[d]
	s.recentMu.Unlock()
	return ok && time.Since(at) < grace
}

// SetUploadTTL bounds how long an idle upload session (and its spool
// file) survives; zero disables expiry. See distrib.UploadManager.
func (s *Server) SetUploadTTL(d time.Duration) { s.uploads.TTL = d }

// Fsck checks the mounted blob store's integrity (it must be
// disk-backed). With repair false the scan is read-only; with repair
// true corrupt blobs are quarantined, orphaned temp spools removed,
// and tags pointing at missing manifests swept (returned as the
// second value). Exposed on the CLI as comtainer-registry -fsck.
func (s *Server) Fsck(repair bool) (distrib.FsckReport, []string, error) {
	ds, ok := s.blobs.(*distrib.DiskStore)
	if !ok {
		return distrib.FsckReport{}, nil, fmt.Errorf("registry: fsck requires a disk-backed blob store")
	}
	var rep distrib.FsckReport
	var err error
	if repair {
		rep, err = ds.Repair()
		// The open-time Repair may already have healed crash damage;
		// fold its actions in so the operator sees what was fixed
		// rather than a clean scan of the post-repair store.
		open := ds.OpenReport()
		rep.Corrupt = append(open.Corrupt, rep.Corrupt...)
		rep.Misplaced = append(open.Misplaced, rep.Misplaced...)
		rep.OrphanTemps = append(open.OrphanTemps, rep.OrphanTemps...)
		rep.Quarantined += open.Quarantined
		rep.TempsSwept += open.TempsSwept
	} else {
		rep, err = ds.Fsck()
	}
	if err != nil {
		return rep, nil, err
	}
	var removed []string
	if repair {
		removed, err = distrib.SweepDanglingRefs(s.refs, s.blobs)
	}
	return rep, removed, err
}

// GC deletes every blob unreachable from the currently tagged
// manifests and manifest lists, returning the number dropped. Blobs
// committed within GCGrace survive even while unreferenced, so a
// sweep racing an in-flight push never collects a blob between its
// commit and the manifest's ref registration.
func (s *Server) GC() (int, error) {
	var roots []oci.Descriptor
	for _, desc := range s.refs.All() {
		roots = append(roots, desc)
	}
	return distrib.GCProtected(s.blobs, roots, s.recentlyCommitted)
}

// Handler returns the HTTP handler implementing the distribution API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v2/", s.route)
	return mux
}

// route dispatches /v2/<name>/(manifests|blobs|blobs/uploads)/<ref>.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v2/")
	if rest == "" {
		w.WriteHeader(http.StatusOK)
		return
	}
	// Tag enumeration: GET /v2/<name>/tags/list.
	if strings.HasSuffix(rest, "/tags/list") && r.Method == http.MethodGet {
		s.listTags(w, strings.TrimSuffix(rest, "/tags/list"))
		return
	}
	// Find the resource kind separator from the right so names may
	// contain slashes.
	var name, kind, ref string
	for _, k := range []string{"/manifests/", "/blobs/"} {
		if i := strings.LastIndex(rest, k); i >= 0 {
			name, kind, ref = rest[:i], strings.Trim(k, "/"), rest[i+len(k):]
			break
		}
	}
	if name == "" || (ref == "" && !strings.HasSuffix(rest, "/blobs/uploads/")) {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	if kind == "manifests" {
		switch r.Method {
		case http.MethodGet:
			s.getManifest(w, name, ref, false)
		case http.MethodHead:
			s.getManifest(w, name, ref, true)
		case http.MethodPut:
			s.putManifest(w, r, name, ref)
		default:
			http.Error(w, "unsupported operation", http.StatusMethodNotAllowed)
		}
		return
	}
	// Blob routes. Upload sessions live under blobs/uploads/.
	if id, ok := strings.CutPrefix(ref, "uploads"); ok {
		id = strings.TrimPrefix(id, "/")
		s.routeUpload(w, r, name, id)
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.getBlob(w, r, ref)
	case http.MethodHead:
		s.headBlob(w, ref)
	default:
		http.Error(w, "unsupported operation", http.StatusMethodNotAllowed)
	}
}

// routeUpload dispatches the upload-session protocol:
//
//	POST   /v2/<name>/blobs/uploads/           start a session (202, Location)
//	PATCH  /v2/<name>/blobs/uploads/<id>       append a chunk (Content-Range checked)
//	PUT    /v2/<name>/blobs/uploads/<id>?digest=  finalize (verifies digest)
//	GET    /v2/<name>/blobs/uploads/<id>       committed offset (204, Range)
//	DELETE /v2/<name>/blobs/uploads/<id>       cancel
//	PUT    /v2/<name>/blobs/uploads?digest=    legacy monolithic upload
func (s *Server) routeUpload(w http.ResponseWriter, r *http.Request, name, id string) {
	if id == "" {
		switch {
		case r.Method == http.MethodPost:
			s.startUpload(w, r, name)
		case r.Method == http.MethodPut && r.URL.Query().Get("digest") != "":
			// Back-compat: the old single-request PUT ?digest= upload.
			s.putBlobMonolithic(w, r)
		default:
			http.Error(w, "unsupported operation", http.StatusMethodNotAllowed)
		}
		return
	}
	u, ok := s.uploads.Get(id)
	if !ok {
		http.Error(w, "upload unknown", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodPatch:
		s.patchUpload(w, r, u)
	case http.MethodPut:
		s.putUpload(w, r, name, u)
	case http.MethodGet:
		w.Header().Set("Docker-Upload-UUID", u.ID)
		w.Header().Set("Range", uploadRange(u.Size()))
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		s.uploads.Cancel(u)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "unsupported operation", http.StatusMethodNotAllowed)
	}
}

// contextReader fails reads once ctx is done, so a handler streaming a
// request body into the store stops promptly when the client has gone
// away instead of spooling bytes nobody will finalize.
type contextReader struct {
	ctx context.Context
	r   io.Reader
}

func (c contextReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

// uploadRange renders the session Range header ("0-0" when empty, per
// the docker convention).
func uploadRange(size int64) string {
	if size <= 0 {
		return "0-0"
	}
	return fmt.Sprintf("0-%d", size-1)
}

func (s *Server) startUpload(w http.ResponseWriter, r *http.Request, name string) {
	// Single-POST monolithic upload when a digest is supplied.
	if want := r.URL.Query().Get("digest"); want != "" {
		s.putBlobMonolithic(w, r)
		return
	}
	u, err := s.uploads.Start(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Location", "/v2/"+name+"/blobs/uploads/"+u.ID)
	w.Header().Set("Docker-Upload-UUID", u.ID)
	w.Header().Set("Range", "0-0")
	w.WriteHeader(http.StatusAccepted)
}

func (s *Server) patchUpload(w http.ResponseWriter, r *http.Request, u *distrib.Upload) {
	expectStart := int64(-1)
	if cr := r.Header.Get("Content-Range"); cr != "" {
		start, _, ok := strings.Cut(strings.TrimPrefix(cr, "bytes "), "-")
		n, err := strconv.ParseInt(start, 10, 64)
		if !ok || err != nil || n < 0 {
			http.Error(w, "malformed Content-Range", http.StatusBadRequest)
			return
		}
		expectStart = n
	}
	size, err := u.Append(contextReader{r.Context(), r.Body}, expectStart)
	if err != nil {
		// A mis-aligned chunk gets 416 plus the committed range so the
		// client can resume from the recorded offset.
		w.Header().Set("Docker-Upload-UUID", u.ID)
		w.Header().Set("Range", uploadRange(size))
		http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
		return
	}
	w.Header().Set("Docker-Upload-UUID", u.ID)
	w.Header().Set("Range", uploadRange(size))
	w.WriteHeader(http.StatusAccepted)
}

func (s *Server) putUpload(w http.ResponseWriter, r *http.Request, name string, u *distrib.Upload) {
	// An optional trailing chunk may ride on the finalizing PUT.
	if r.ContentLength != 0 {
		if _, err := u.Append(contextReader{r.Context(), r.Body}, -1); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	want, err := digest.Parse(r.URL.Query().Get("digest"))
	if err != nil {
		http.Error(w, "invalid digest", http.StatusBadRequest)
		return
	}
	had := s.blobs.Has(want)
	d, _, err := s.uploads.Commit(u, s.blobs, want)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !s.afterBlobCommit(w, r, d, had) {
		return
	}
	w.Header().Set("Location", "/v2/"+name+"/blobs/"+string(d))
	w.Header().Set("Docker-Content-Digest", string(d))
	w.WriteHeader(http.StatusCreated)
}

// afterBlobCommit runs the post-commit bookkeeping shared by both
// upload paths: pin the blob against GC and replicate it through the
// commit hook. On hook failure the response is a 503 and, when this
// request introduced the blob, the local copy is rolled back — so a
// retried push re-uploads and re-replicates instead of short-
// circuiting on the HEAD dedup probe. Returns false when the response
// has been written.
func (s *Server) afterBlobCommit(w http.ResponseWriter, r *http.Request, d digest.Digest, had bool) bool {
	s.noteCommit(d)
	hook := s.commitHook()
	if hook == nil || replicated(r) {
		return true
	}
	if err := hook.BlobCommitted(r.Context(), d); err != nil {
		msg := "replication failed: " + err.Error()
		if !had {
			if derr := s.blobs.Delete(d); derr != nil {
				msg += " (rollback failed: " + derr.Error() + ")"
			}
		}
		http.Error(w, msg, http.StatusServiceUnavailable)
		return false
	}
	return true
}

// putBlobMonolithic is the legacy single-request upload: the whole
// blob in one PUT (or POST) with ?digest=.
func (s *Server) putBlobMonolithic(w http.ResponseWriter, r *http.Request) {
	want, err := digest.Parse(r.URL.Query().Get("digest"))
	if err != nil {
		http.Error(w, "invalid digest", http.StatusBadRequest)
		return
	}
	had := s.blobs.Has(want)
	d, _, err := s.blobs.Ingest(io.LimitReader(contextReader{r.Context(), r.Body}, 1<<30), want)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !s.afterBlobCommit(w, r, d, had) {
		return
	}
	w.Header().Set("Docker-Content-Digest", string(d))
	w.WriteHeader(http.StatusCreated)
}

// getBlob streams a blob, honoring single-range HTTP Range requests
// ("bytes=a-b" / "bytes=a-") with 206 responses.
func (s *Server) getBlob(w http.ResponseWriter, r *http.Request, ref string) {
	d, err := digest.Parse(ref)
	if err != nil {
		http.Error(w, "invalid digest", http.StatusBadRequest)
		return
	}
	ServeBlob(w, r, s.blobs, d)
}

// ServeBlob streams blob d from src with distribution-API headers,
// honoring single-range HTTP Range requests ("bytes=a-b" /
// "bytes=a-") with 206 responses. Shared by the registry's blob GET
// and the fleet proxy's cache-hit path.
func ServeBlob(w http.ResponseWriter, r *http.Request, src distrib.BlobSource, d digest.Digest) {
	body, size, err := src.Open(d)
	if err != nil {
		http.Error(w, "blob unknown", http.StatusNotFound)
		return
	}
	defer body.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Docker-Content-Digest", string(d))
	w.Header().Set("Accept-Ranges", "bytes")
	if rng := r.Header.Get("Range"); rng != "" {
		start, end, ok := parseByteRange(rng, size)
		if !ok {
			w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", size))
			http.Error(w, "unsatisfiable range", http.StatusRequestedRangeNotSatisfiable)
			return
		}
		if _, err := io.CopyN(io.Discard, body, start); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", start, end, size))
		w.Header().Set("Content-Length", strconv.FormatInt(end-start+1, 10))
		w.WriteHeader(http.StatusPartialContent)
		_, _ = io.CopyN(w, body, end-start+1)
		return
	}
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	_, _ = io.Copy(w, body)
}

// parseByteRange parses a single "bytes=a-b" or "bytes=a-" range
// against a blob of the given size, returning the inclusive bounds.
func parseByteRange(rng string, size int64) (start, end int64, ok bool) {
	spec, found := strings.CutPrefix(rng, "bytes=")
	if !found || strings.Contains(spec, ",") {
		return 0, 0, false
	}
	from, to, found := strings.Cut(spec, "-")
	if !found {
		return 0, 0, false
	}
	start, err := strconv.ParseInt(from, 10, 64)
	if err != nil || start < 0 || start >= size {
		return 0, 0, false
	}
	if to == "" {
		return start, size - 1, true
	}
	end, err = strconv.ParseInt(to, 10, 64)
	if err != nil || end < start {
		return 0, 0, false
	}
	if end >= size {
		end = size - 1
	}
	return start, end, true
}

func (s *Server) headBlob(w http.ResponseWriter, ref string) {
	d, err := digest.Parse(ref)
	if err != nil || !s.blobs.Has(d) {
		w.WriteHeader(http.StatusNotFound)
		return
	}
	body, size, err := s.blobs.Open(d)
	if err != nil {
		w.WriteHeader(http.StatusNotFound)
		return
	}
	body.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Docker-Content-Digest", string(d))
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.WriteHeader(http.StatusOK)
}

// resolveManifest turns a tag or digest reference into a descriptor.
func (s *Server) resolveManifest(name, ref string) (oci.Descriptor, bool) {
	if desc, ok := s.refs.Resolve(name, ref); ok {
		return desc, true
	}
	if d, err := digest.Parse(ref); err == nil && s.blobs.Has(d) {
		return oci.Descriptor{MediaType: oci.MediaTypeManifest, Digest: d}, true
	}
	return oci.Descriptor{}, false
}

// getManifest serves GET and HEAD for manifests; HEAD returns the same
// headers (Docker-Content-Digest, Content-Type, Content-Length) with
// no body.
func (s *Server) getManifest(w http.ResponseWriter, name, ref string, headOnly bool) {
	desc, ok := s.resolveManifest(name, ref)
	if !ok {
		http.Error(w, "manifest unknown", http.StatusNotFound)
		return
	}
	b, err := distrib.ReadBlob(s.blobs, desc.Digest)
	if err != nil {
		http.Error(w, "manifest blob missing", http.StatusInternalServerError)
		return
	}
	mediaType := desc.MediaType
	if mediaType == "" {
		mediaType = oci.MediaTypeManifest
	}
	w.Header().Set("Content-Type", mediaType)
	w.Header().Set("Docker-Content-Digest", string(desc.Digest))
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	if headOnly {
		w.WriteHeader(http.StatusOK)
		return
	}
	_, _ = w.Write(b)
}

// putManifest stores a manifest or manifest list pushed by tag or by
// digest. Per distribution-spec semantics it rejects (400, naming the
// digest) any manifest whose referenced config/layers — or, for a
// list, member manifests — are not yet present, so clients must upload
// blobs first.
func (s *Server) putManifest(w http.ResponseWriter, r *http.Request, name, ref string) {
	body, err := io.ReadAll(io.LimitReader(contextReader{r.Context(), r.Body}, maxManifestSize))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	var refs struct {
		Config    *oci.Descriptor  `json:"config"`
		Layers    []oci.Descriptor `json:"layers"`
		Manifests []oci.Descriptor `json:"manifests"`
	}
	if err := json.Unmarshal(body, &refs); err != nil {
		http.Error(w, "manifest is not valid JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !s.TrustReferences {
		var referenced []oci.Descriptor
		if refs.Config != nil && refs.Config.Digest != "" {
			referenced = append(referenced, *refs.Config)
		}
		referenced = append(referenced, refs.Layers...)
		referenced = append(referenced, refs.Manifests...)
		for _, rd := range referenced {
			if !s.blobs.Has(rd.Digest) {
				http.Error(w, fmt.Sprintf("manifest references missing blob %s", rd.Digest), http.StatusBadRequest)
				return
			}
		}
	}
	d := digest.FromBytes(body)
	if want, err := digest.Parse(ref); err == nil {
		// Push by digest: content must match the reference.
		if want != d {
			http.Error(w, fmt.Sprintf("manifest digest mismatch: content is %s, ref is %s", d, want), http.StatusBadRequest)
			return
		}
	}
	had := s.blobs.Has(d)
	if _, _, err := s.blobs.Ingest(strings.NewReader(string(body)), d); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.noteCommit(d)
	mediaType := r.Header.Get("Content-Type")
	if mediaType == "" {
		mediaType = oci.MediaTypeManifest
		if len(refs.Manifests) > 0 {
			mediaType = oci.MediaTypeIndex
		}
	}
	// Replicate before registering the tag locally: an acknowledged
	// manifest must exist on the followers, and a follower promoted
	// after a mid-PUT leader crash may hold a ref the dead leader never
	// recorded — safe, since only acknowledged state must survive.
	if hook := s.commitHook(); hook != nil && !replicated(r) {
		if err := hook.ManifestCommitted(r.Context(), name, ref, mediaType, body); err != nil {
			msg := "replication failed: " + err.Error()
			if !had {
				if derr := s.blobs.Delete(d); derr != nil {
					msg += " (rollback failed: " + derr.Error() + ")"
				}
			}
			http.Error(w, msg, http.StatusServiceUnavailable)
			return
		}
	}
	if _, err := digest.Parse(ref); err != nil {
		// Tag reference: record it.
		if err := s.refs.Set(name, ref, oci.Descriptor{
			MediaType: mediaType,
			Digest:    d,
			Size:      int64(len(body)),
		}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Location", "/v2/"+name+"/manifests/"+string(d))
	w.Header().Set("Docker-Content-Digest", string(d))
	w.WriteHeader(http.StatusCreated)
}

// listTags serves the distribution tags/list endpoint.
func (s *Server) listTags(w http.ResponseWriter, name string) {
	tags := s.refs.Tags(name)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Name string   `json:"name"`
		Tags []string `json:"tags"`
	}{Name: name, Tags: tags})
}

// Tags lists the known "name:tag" keys (for inspection).
func (s *Server) Tags() []string {
	all := s.refs.All()
	out := make([]string, 0, len(all))
	for k := range all {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- Client ---

// Client pushes and pulls images against a registry base URL, backed
// by the concurrent distrib.Client (parallel layer transfer, resumable
// chunked uploads, retry with backoff, cross-image blob dedup).
type Client struct {
	*distrib.Client
}

// NewClient returns a client for the registry at base.
func NewClient(base string) *Client {
	return &Client{Client: distrib.NewClient(base)}
}

// Push uploads the image tagged localTag in repo to the registry as
// name:tag — all referenced blobs first (in parallel, skipping blobs
// the registry already holds), then the manifest. Cancelling ctx
// aborts in-flight transfers and any retry backoff.
func (c *Client) Push(ctx context.Context, repo *oci.Repository, localTag, name, tag string) error {
	desc, err := repo.Resolve(localTag)
	if err != nil {
		return err
	}
	return c.PushImage(ctx, repo.Store, desc, name, tag)
}

// Pull downloads name:tag from the registry into repo under localTag,
// fetching missing layers in parallel. Cancelling ctx aborts in-flight
// transfers and any retry backoff.
func (c *Client) Pull(ctx context.Context, repo *oci.Repository, name, tag, localTag string) error {
	desc, err := c.PullImage(ctx, repo.Store, name, tag)
	if err != nil {
		return err
	}
	repo.Tag(localTag, desc)
	return nil
}
