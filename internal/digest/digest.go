// Package digest implements content addressing for OCI blobs.
//
// A Digest is the algorithm-prefixed lowercase hex encoding of a hash of
// blob content, e.g. "sha256:6c3c624b58db...". Only sha256 is supported,
// matching what the OCI image spec requires of all implementations.
package digest

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"strings"
)

// Algorithm identifies a supported hash algorithm.
type Algorithm string

// SHA256 is the only algorithm this implementation emits.
const SHA256 Algorithm = "sha256"

// Digest is an algorithm-qualified content hash such as "sha256:abcd...".
// The zero value is invalid.
type Digest string

// ErrInvalid reports a malformed digest string.
var ErrInvalid = errors.New("digest: invalid format")

// FromBytes computes the sha256 digest of b.
func FromBytes(b []byte) Digest {
	sum := sha256.Sum256(b)
	return Digest("sha256:" + hex.EncodeToString(sum[:]))
}

// FromString computes the sha256 digest of s.
func FromString(s string) Digest {
	return FromBytes([]byte(s))
}

// FromHash returns the digest of the content accumulated in h, which
// must be a sha256 hash. It is the typed alternative to assembling
// "sha256:" + hex strings by hand at streaming call sites.
func FromHash(h hash.Hash) Digest {
	return Digest("sha256:" + hex.EncodeToString(h.Sum(nil)))
}

// FromReader computes the sha256 digest of everything readable from r.
func FromReader(r io.Reader) (Digest, int64, error) {
	h := sha256.New()
	n, err := io.Copy(h, r)
	if err != nil {
		return "", 0, fmt.Errorf("digest: reading content: %w", err)
	}
	return FromHash(h), n, nil
}

// Parse validates s and returns it as a Digest.
func Parse(s string) (Digest, error) {
	d := Digest(s)
	if err := d.Validate(); err != nil {
		return "", err
	}
	return d, nil
}

// Validate checks that d has the form "sha256:<64 lowercase hex chars>".
func (d Digest) Validate() error {
	algo, hexPart, ok := strings.Cut(string(d), ":")
	if !ok {
		return fmt.Errorf("%w: missing ':' in %q", ErrInvalid, string(d))
	}
	if Algorithm(algo) != SHA256 {
		return fmt.Errorf("%w: unsupported algorithm %q", ErrInvalid, algo)
	}
	if len(hexPart) != sha256.Size*2 {
		return fmt.Errorf("%w: want %d hex chars, got %d", ErrInvalid, sha256.Size*2, len(hexPart))
	}
	for _, c := range hexPart {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("%w: non-hex character %q", ErrInvalid, c)
		}
	}
	return nil
}

// Algorithm returns the algorithm portion of the digest.
func (d Digest) Algorithm() Algorithm {
	algo, _, _ := strings.Cut(string(d), ":")
	return Algorithm(algo)
}

// Hex returns the hex portion of the digest (without the algorithm prefix).
func (d Digest) Hex() string {
	_, hexPart, _ := strings.Cut(string(d), ":")
	return hexPart
}

// Short returns a 12-character abbreviation of the hex portion, the common
// human-facing form. Returns the whole hex part if shorter.
func (d Digest) Short() string {
	h := d.Hex()
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// String returns the full "algorithm:hex" form.
func (d Digest) String() string { return string(d) }

// Verify reports whether content hashes to d.
func (d Digest) Verify(content []byte) bool {
	return FromBytes(content) == d
}

// Verifier incrementally hashes written content and reports whether the
// final hash matches an expected digest.
type Verifier struct {
	want Digest
	h    hash.Hash
}

// NewVerifier returns a Verifier checking against want.
func NewVerifier(want Digest) *Verifier {
	return &Verifier{want: want, h: sha256.New()}
}

// Write feeds content into the verifier. It never fails.
func (v *Verifier) Write(p []byte) (int, error) { return v.h.Write(p) }

// Verified reports whether all content written so far hashes to the
// expected digest.
func (v *Verifier) Verified() bool {
	return FromHash(v.h) == v.want
}
