package digest

import (
	"crypto/sha256"
	"testing"
)

func TestFromHashMatchesFromBytes(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("x"), []byte("the quick brown fox")} {
		h := sha256.New()
		h.Write(data)
		got := FromHash(h)
		if want := FromBytes(data); got != want {
			t.Errorf("FromHash(%q) = %s, want %s", data, got, want)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("FromHash(%q) produced invalid digest: %v", data, err)
		}
	}
}
