package digest

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestFromBytesKnownVector(t *testing.T) {
	// sha256 of empty input is a well-known constant.
	const empty = "sha256:e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
	if got := FromBytes(nil); got != Digest(empty) {
		t.Errorf("FromBytes(nil) = %s, want %s", got, empty)
	}
	const abc = "sha256:ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
	if got := FromBytes([]byte("abc")); got != Digest(abc) {
		t.Errorf("FromBytes(abc) = %s, want %s", got, abc)
	}
}

func TestFromStringMatchesFromBytes(t *testing.T) {
	if FromString("hello") != FromBytes([]byte("hello")) {
		t.Error("FromString and FromBytes disagree")
	}
}

func TestFromReader(t *testing.T) {
	d, n, err := FromReader(strings.NewReader("abc"))
	if err != nil {
		t.Fatalf("FromReader: %v", err)
	}
	if n != 3 {
		t.Errorf("n = %d, want 3", n)
	}
	if d != FromBytes([]byte("abc")) {
		t.Errorf("digest mismatch: %s", d)
	}
}

func TestParseValid(t *testing.T) {
	d := FromBytes([]byte("x"))
	got, err := Parse(string(d))
	if err != nil {
		t.Fatalf("Parse(%q): %v", d, err)
	}
	if got != d {
		t.Errorf("Parse = %s, want %s", got, d)
	}
}

func TestParseInvalid(t *testing.T) {
	cases := []string{
		"",
		"sha256",
		"sha256:",
		"sha256:short",
		"md5:d41d8cd98f00b204e9800998ecf8427e",
		"sha256:" + strings.Repeat("Z", 64),
		"sha256:" + strings.Repeat("A", 64), // uppercase hex rejected
		strings.Repeat("a", 64),             // no algorithm
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestAccessors(t *testing.T) {
	d := FromBytes([]byte("payload"))
	if d.Algorithm() != SHA256 {
		t.Errorf("Algorithm = %q", d.Algorithm())
	}
	if len(d.Hex()) != 64 {
		t.Errorf("Hex length = %d", len(d.Hex()))
	}
	if len(d.Short()) != 12 {
		t.Errorf("Short length = %d", len(d.Short()))
	}
	if !strings.HasPrefix(d.String(), "sha256:") {
		t.Errorf("String = %q", d.String())
	}
}

func TestVerify(t *testing.T) {
	content := []byte("some bytes")
	d := FromBytes(content)
	if !d.Verify(content) {
		t.Error("Verify rejected matching content")
	}
	if d.Verify([]byte("other bytes")) {
		t.Error("Verify accepted mismatched content")
	}
}

func TestVerifier(t *testing.T) {
	content := []byte("streaming content for the verifier")
	v := NewVerifier(FromBytes(content))
	// Feed in two chunks to exercise incremental hashing.
	if _, err := v.Write(content[:10]); err != nil {
		t.Fatal(err)
	}
	if v.Verified() {
		t.Error("Verified true before all content written")
	}
	if _, err := v.Write(content[10:]); err != nil {
		t.Fatal(err)
	}
	if !v.Verified() {
		t.Error("Verified false after all content written")
	}
}

func TestPropertyDeterministicAndParseable(t *testing.T) {
	f := func(b []byte) bool {
		d1 := FromBytes(b)
		d2 := FromBytes(bytes.Clone(b))
		if d1 != d2 {
			return false
		}
		if err := d1.Validate(); err != nil {
			return false
		}
		return d1.Verify(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyDistinctContentDistinctDigest(t *testing.T) {
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		return FromBytes(a) != FromBytes(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
