// Package chrun executes container images on simulated HPC systems — the
// role Charliecloud's ch-run plays in the paper's evaluation ("images ...
// executed with Charliecloud on the remote HPC system", §5.1.1).
//
// Running an image flattens it, resolves the entrypoint binary, and feeds
// the binary's artifact metadata plus the runtime file system to the
// performance model. Running a PGO-instrumented binary additionally emits
// profile data, closing the paper's automated PGO feedback loop.
package chrun

import (
	"fmt"

	"comtainer/internal/digest"
	"comtainer/internal/fsim"
	"comtainer/internal/oci"
	"comtainer/internal/perfmodel"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
	"comtainer/internal/workloads"
)

// Result is the outcome of one containerized run.
type Result struct {
	perfmodel.Result
	// Profile holds PGO profile data when the binary was instrumented.
	Profile []byte
	// Binary is the executed artifact, for introspection.
	Binary *toolchain.Artifact
}

// RunImage executes the image's entrypoint for the given workload.
func RunImage(sys *sysprofile.System, ref workloads.Ref, img *oci.Image, nodes int) (Result, error) {
	flat, err := img.Flatten()
	if err != nil {
		return Result{}, fmt.Errorf("chrun: flattening image: %w", err)
	}
	entry := img.Config.Config.Entrypoint
	if len(entry) == 0 {
		return Result{}, fmt.Errorf("chrun: image has no entrypoint; pass the program path explicitly")
	}
	return RunFS(sys, ref, flat, entry[0], nodes)
}

// RunFS executes the binary at binPath from an already-flattened root.
func RunFS(sys *sysprofile.System, ref workloads.Ref, runFS *fsim.FS, binPath string, nodes int) (Result, error) {
	resolved, err := runFS.ResolveSymlink(binPath)
	if err != nil {
		return Result{}, fmt.Errorf("chrun: %s: no such file or directory", binPath)
	}
	data, err := runFS.ReadFile(resolved)
	if err != nil {
		return Result{}, fmt.Errorf("chrun: %s: no such file or directory", binPath)
	}
	bin, err := toolchain.Decode(data)
	if err != nil {
		return Result{}, fmt.Errorf("chrun: %s: cannot execute binary file", binPath)
	}
	res, err := perfmodel.Estimate(sys, ref, bin, runFS, nodes)
	if err != nil {
		return Result{}, err
	}
	out := Result{Result: res, Binary: bin}
	if bin.PGOInstrumented {
		// Deterministic profile content: a function of the binary and the
		// training workload, so repeated trial runs agree.
		out.Profile = []byte(fmt.Sprintf("COMT-PROFILE v1\nbinary: %s\nworkload: %s\nsystem: %s\n",
			digest.FromBytes(data), ref.ID(), sys.Name))
	}
	return out, nil
}
