package chrun

import (
	"bytes"
	"strings"
	"testing"

	"comtainer/internal/dpkg"
	"comtainer/internal/fsim"
	"comtainer/internal/oci"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
	"comtainer/internal/workloads"
)

func refFor(t *testing.T, id string) workloads.Ref {
	t.Helper()
	for _, r := range workloads.AllRefs() {
		if r.ID() == id {
			return r
		}
	}
	t.Fatalf("no workload %s", id)
	return workloads.Ref{}
}

// runRoot builds a minimal runnable root for comd on sys.
func runRoot(t *testing.T, sys *sysprofile.System, instrumented bool) (*fsim.FS, string) {
	t.Helper()
	fs := fsim.New()
	db := dpkg.NewDB()
	idx := sysprofile.GenericIndex(sys.ISA)
	for _, name := range []string{"libc6", "libm6", "libopenmpi3"} {
		p, ok := idx.Latest(name)
		if !ok {
			t.Fatalf("missing package %s", name)
		}
		if err := db.InstallWithDeps(fs, idx, p); err != nil {
			t.Fatal(err)
		}
	}
	bin := &toolchain.Artifact{
		Kind:      toolchain.KindExecutable,
		Name:      "comd",
		TargetISA: sys.ISA,
		March:     "x86-64",
		OptLevel:  "2",
		DynamicLibs: []string{
			"/usr/lib/libc.so.6", "/usr/lib/libm.so.6", "/usr/lib/libmpi.so.40",
		},
		PGOInstrumented: instrumented,
	}
	if sys.ISA == toolchain.ISAArm {
		bin.March = "armv8-a"
	}
	fs.WriteFile("/app/comd", bin.Encode(), 0o755)
	return fs, "/app/comd"
}

func TestRunFS(t *testing.T) {
	sys := sysprofile.X86Cluster()
	fs, bin := runRoot(t, sys, false)
	res, err := RunFS(sys, refFor(t, "comd"), fs, bin, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 {
		t.Errorf("Seconds = %f", res.Seconds)
	}
	if res.Profile != nil {
		t.Error("non-instrumented run produced a profile")
	}
	if res.Binary == nil || res.Binary.Name != "comd" {
		t.Errorf("Binary = %+v", res.Binary)
	}
}

func TestRunImageEntrypoint(t *testing.T) {
	sys := sysprofile.X86Cluster()
	fs, bin := runRoot(t, sys, false)
	repo := oci.NewRepository()
	desc, err := oci.WriteImage(repo.Store, oci.ImageConfig{
		Architecture: "amd64", OS: "linux",
		Config: oci.ExecConfig{Entrypoint: []string{bin}},
	}, []*fsim.FS{fs})
	if err != nil {
		t.Fatal(err)
	}
	img, err := oci.LoadImage(repo.Store, desc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunImage(sys, refFor(t, "comd"), img, 16); err != nil {
		t.Fatal(err)
	}
	// No entrypoint -> error.
	desc2, _ := oci.WriteImage(repo.Store, oci.ImageConfig{Architecture: "amd64", OS: "linux"}, []*fsim.FS{fs})
	img2, _ := oci.LoadImage(repo.Store, desc2)
	if _, err := RunImage(sys, refFor(t, "comd"), img2, 16); err == nil {
		t.Error("image without entrypoint ran")
	}
}

func TestInstrumentedRunEmitsDeterministicProfile(t *testing.T) {
	sys := sysprofile.X86Cluster()
	fs, bin := runRoot(t, sys, true)
	ref := refFor(t, "comd")
	r1, err := RunFS(sys, ref, fs, bin, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Profile) == 0 {
		t.Fatal("instrumented run produced no profile")
	}
	r2, err := RunFS(sys, ref, fs, bin, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.Profile, r2.Profile) {
		t.Error("profile not deterministic")
	}
	if !strings.Contains(string(r1.Profile), "comd") {
		t.Errorf("profile content: %q", r1.Profile)
	}
}

func TestRunErrors(t *testing.T) {
	sys := sysprofile.X86Cluster()
	fs, _ := runRoot(t, sys, false)
	ref := refFor(t, "comd")
	if _, err := RunFS(sys, ref, fs, "/missing", 16); err == nil {
		t.Error("missing binary ran")
	}
	fs.WriteFile("/app/notbinary", []byte("just text"), 0o755)
	if _, err := RunFS(sys, ref, fs, "/app/notbinary", 16); err == nil {
		t.Error("non-artifact file ran")
	}
}
