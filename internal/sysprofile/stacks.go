package sysprofile

import (
	"bytes"
	"fmt"

	"comtainer/internal/dpkg"
	"comtainer/internal/toolchain"
)

// Size scaling: the simulation represents each MiB of a real image as one
// KiB of file content, so Table-3 style size accounting keeps the paper's
// proportions without gigabyte fixtures. SizeUnit is that scale factor.
const SizeUnit = 1024 // bytes per simulated "MiB"

// padding produces deterministic filler content of the given simulated-MiB
// size, standing in for the bulk of a real package's payload.
func padding(pkg string, simMiB float64) []byte {
	n := int(simMiB * SizeUnit)
	if n <= 0 {
		return nil
	}
	pattern := []byte(pkg + " payload block. ")
	return bytes.Repeat(pattern, n/len(pattern)+1)[:n]
}

// libSpec describes one library package shipped in a stack.
type libSpec struct {
	pkg       string  // package name
	version   string  // package version
	so        string  // shared object base name, e.g. "libblas"
	soVer     string  // shared object version suffix, e.g. "3"
	gain      float64 // PerfGain of this build (1.0 = default stack)
	optimized bool
	netPlugin bool    // MPI fabric plugin present
	simMiB    float64 // simulated size
	deps      []string
	section   string
}

// build materializes the spec as a dpkg package for the given ISA/vendor.
func (ls libSpec) build(isa, vendor string) *dpkg.Package {
	soFile := fmt.Sprintf("/usr/lib/%s.so.%s", ls.so, ls.soVer)
	var art *toolchain.Artifact
	if ls.netPlugin || ls.so == "libmpi" {
		art = toolchain.MPILibraryArtifact(ls.so, vendor, isa, ls.gain, ls.netPlugin)
	} else {
		art = toolchain.LibraryArtifact(ls.so, vendor, isa, ls.gain, ls.optimized)
	}
	p := &dpkg.Package{
		Name:         ls.pkg,
		Version:      dpkg.Version(ls.version),
		Architecture: debArch(isa),
		Section:      ls.section,
		Description:  fmt.Sprintf("%s shared library (%s build)", ls.so, vendor),
		Optimized:    ls.optimized,
		Vendor:       vendor,
		PerfGain:     ls.gain,
		Files: []dpkg.PackageFile{
			{Path: soFile, Data: art.Encode(), Mode: 0o644},
			{Path: fmt.Sprintf("/usr/lib/%s.so", ls.so), Link: fmt.Sprintf("%s.so.%s", ls.so, ls.soVer)},
			{Path: fmt.Sprintf("/usr/share/doc/%s/changelog.gz", ls.pkg), Data: padding(ls.pkg, ls.simMiB), Mode: 0o644},
		},
	}
	for _, d := range ls.deps {
		dep, err := dpkg.ParseDependency(d)
		if err != nil {
			panic("sysprofile: bad dependency literal " + d)
		}
		p.Depends = append(p.Depends, dep)
	}
	if ls.section == "" {
		p.Section = "libs"
	}
	return p
}

// debArch maps an ISA name to the Debian architecture string.
func debArch(isa string) string {
	if isa == toolchain.ISAArm {
		return "arm64"
	}
	return "amd64"
}

// coreSpecs returns the always-installed runtime stack of the distribution
// base image, sized per ISA (the paper's Table 3 shows the x86-64 stack is
// substantially more bloated than the AArch64 one).
func coreSpecs(isa string) []libSpec {
	x86 := isa == toolchain.ISAx86
	sz := func(xv, av float64) float64 {
		if x86 {
			return xv
		}
		return av
	}
	return []libSpec{
		{pkg: "libc6", version: "2.39-0ubuntu8", so: "libc", soVer: "6", gain: 1.0, simMiB: sz(58, 31)},
		{pkg: "libm6", version: "2.39-0ubuntu8", so: "libm", soVer: "6", gain: 1.0, simMiB: sz(9, 4.5), deps: []string{"libc6"}},
		{pkg: "libstdc++6", version: "14.2.0-4ubuntu1", so: "libstdc++", soVer: "6", gain: 1.0, simMiB: sz(24, 12), deps: []string{"libc6"}},
		{pkg: "libgomp1", version: "14.2.0-4ubuntu1", so: "libgomp", soVer: "1", gain: 1.0, simMiB: sz(5, 2.5), deps: []string{"libc6"}},
		{pkg: "zlib1g", version: "1.3.dfsg-3", so: "libz", soVer: "1", gain: 1.0, simMiB: sz(3, 1.8), deps: []string{"libc6"}},
		{pkg: "libgfortran5", version: "14.2.0-4ubuntu1", so: "libgfortran", soVer: "5", gain: 1.0, simMiB: sz(6, 3), deps: []string{"libc6"}},
	}
}

// numericSpecs returns the apt-installable numeric/communication libraries
// workloads depend on, in their default (unoptimized) builds.
func numericSpecs(isa string) []libSpec {
	x86 := isa == toolchain.ISAx86
	sz := func(xv, av float64) float64 {
		if x86 {
			return xv
		}
		return av
	}
	return []libSpec{
		{pkg: "libopenblas0", version: "0.3.26+ds-1", so: "libblas", soVer: "3", gain: 1.0, simMiB: sz(6, 4.2), deps: []string{"libc6", "libgfortran5"}},
		{pkg: "liblapack3", version: "3.12.0-3", so: "liblapack", soVer: "3", gain: 1.0, simMiB: sz(5, 3.6), deps: []string{"libopenblas0"}},
		{pkg: "libfftw3-double3", version: "3.3.10-1ubuntu3", so: "libfftw3", soVer: "3", gain: 1.0, simMiB: sz(4.4, 3.1), deps: []string{"libc6"}},
		{pkg: "libopenmpi3", version: "4.1.6-7ubuntu2", so: "libmpi", soVer: "40", gain: 1.0, simMiB: sz(3.6, 2.4), deps: []string{"libc6", "zlib1g"}},
	}
}

// vendorSpecs returns the system-side optimized builds of the same
// packages: identical names, a later "+hpcN" version, Optimized provenance
// and the calibrated per-library gains the perfmodel consumes.
func vendorSpecs(s *System) []libSpec {
	x86 := s.ISA == toolchain.ISAx86
	g := func(xv, av float64) float64 {
		if x86 {
			return xv
		}
		return av
	}
	sz := func(xv, av float64) float64 {
		if x86 {
			return xv
		}
		return av
	}
	specs := []libSpec{
		{pkg: "libm6", version: "2.39-0ubuntu8+hpc1", so: "libm", soVer: "6",
			gain: g(1.35, 1.30), optimized: true, simMiB: sz(11, 5.5), deps: []string{"libc6"}},
		{pkg: "libstdc++6", version: "14.2.0-4ubuntu1+hpc1", so: "libstdc++", soVer: "6",
			gain: g(1.15, 1.10), optimized: true, simMiB: sz(26, 13), deps: []string{"libc6"}},
		{pkg: "libgomp1", version: "14.2.0-4ubuntu1+hpc1", so: "libgomp", soVer: "1",
			gain: g(1.20, 1.15), optimized: true, simMiB: sz(6, 3), deps: []string{"libc6"}},
		{pkg: "zlib1g", version: "1.3.dfsg-3+hpc1", so: "libz", soVer: "1",
			gain: g(1.30, 1.20), optimized: true, simMiB: sz(3.2, 2), deps: []string{"libc6"}},
		{pkg: "libopenblas0", version: "0.3.26+ds-1+hpc1", so: "libblas", soVer: "3",
			gain: g(2.40, 2.00), optimized: true, simMiB: sz(8, 5.5), deps: []string{"libc6", "libgfortran5"}},
		{pkg: "liblapack3", version: "3.12.0-3+hpc1", so: "liblapack", soVer: "3",
			gain: g(2.20, 1.90), optimized: true, simMiB: sz(6.5, 4.6), deps: []string{"libopenblas0"}},
		{pkg: "libfftw3-double3", version: "3.3.10-1ubuntu3+hpc1", so: "libfftw3", soVer: "3",
			gain: g(2.00, 1.70), optimized: true, simMiB: sz(5.5, 4), deps: []string{"libc6"}},
		{pkg: "libopenmpi3", version: "4.1.6-7ubuntu2+hpc1", so: "libmpi", soVer: "40",
			gain: g(1.20, 1.15), optimized: true, netPlugin: true, simMiB: sz(4.8, 3.2), deps: []string{"libc6", "zlib1g"}},
	}
	return specs
}

// NativePackages returns the packages only native (on-system) builds link
// against: the vendor stack plus the vendor C runtime. Adapters never
// replace libc inside an image for ABI-compatibility reasons, so this
// ~3% is the gap between "adapted" and "native" in Figure 9.
func NativePackages(s *System) []*dpkg.Package {
	specs := append(vendorSpecs(s), libSpec{
		pkg: "libc6", version: "2.39-0ubuntu8+hpc1", so: "libc", soVer: "6",
		gain: 1.03, optimized: true, simMiB: 60, deps: nil,
	})
	var out []*dpkg.Package
	for _, ls := range specs {
		out = append(out, ls.build(s.ISA, s.Vendor))
	}
	return out
}

// GenericPackages returns the distribution's default package universe for
// an ISA: core runtime plus the numeric libraries.
func GenericPackages(isa string) []*dpkg.Package {
	var out []*dpkg.Package
	for _, ls := range append(coreSpecs(isa), numericSpecs(isa)...) {
		out = append(out, ls.build(isa, "gnu"))
	}
	out = append(out, BuildEssential(isa), BaseFiles(isa))
	return out
}

// VendorPackages returns the system's optimized package builds.
func VendorPackages(s *System) []*dpkg.Package {
	var out []*dpkg.Package
	for _, ls := range vendorSpecs(s) {
		out = append(out, ls.build(s.ISA, s.Vendor))
	}
	return out
}

// GenericIndex returns an apt index of the generic package universe.
func GenericIndex(isa string) *dpkg.Index {
	idx := dpkg.NewIndex()
	for _, p := range GenericPackages(isa) {
		idx.Add(p)
	}
	return idx
}

// BaseFiles returns the distribution's miscellaneous system files package,
// which carries the bulk of the base image's footprint (the x86-64 stack
// is notably more bloated, per Table 3).
func BaseFiles(isa string) *dpkg.Package {
	size := 57.0
	if isa == toolchain.ISAArm {
		size = 37.0
	}
	return &dpkg.Package{
		Name:         "base-files",
		Version:      "13ubuntu10",
		Architecture: debArch(isa),
		Section:      "admin",
		Description:  "distribution base system files",
		Vendor:       "gnu",
		Files: []dpkg.PackageFile{
			{Path: "/usr/share/base-files/motd", Data: []byte("Ubuntu 24.04 LTS\n"), Mode: 0o644},
			{Path: "/usr/share/base-files/payload.bin", Data: padding("base-files", size), Mode: 0o644},
		},
	}
}

// BuildEssential returns the meta-package installing the default compiler
// driver entry points (the files the Env image replaces with hijacker
// links).
func BuildEssential(isa string) *dpkg.Package {
	tools := []string{"gcc", "g++", "cc", "c++", "gfortran", "ar", "ranlib", "ld", "make"}
	p := &dpkg.Package{
		Name:         "build-essential",
		Version:      "12.10ubuntu1",
		Architecture: debArch(isa),
		Section:      "devel",
		Description:  "toolchain driver entry points",
		Vendor:       "gnu",
		Depends:      []dpkg.Dependency{{Name: "libc6"}},
	}
	for _, t := range tools {
		p.Files = append(p.Files, dpkg.PackageFile{
			Path: "/usr/bin/" + t,
			Data: []byte("#!driver " + t + "\n"),
			Mode: 0o755,
		})
	}
	p.Files = append(p.Files, dpkg.PackageFile{
		Path: "/usr/share/doc/build-essential/changelog.gz",
		Data: padding("build-essential", 2.5),
		Mode: 0o644,
	})
	return p
}

// VendorToolchainPackage returns the package shipping the vendor compiler
// entry points in the Sysenv image.
func VendorToolchainPackage(s *System) *dpkg.Package {
	names := []string{"gcc", "g++", "cc", "c++", "gfortran", "ar", "ranlib", "ld"}
	p := &dpkg.Package{
		Name:         s.Vendor + "-toolchain",
		Version:      "2025.1",
		Architecture: debArch(s.ISA),
		Section:      "devel",
		Description:  "vendor compiler suite for " + s.Name,
		Vendor:       s.Vendor,
		Optimized:    true,
		Depends:      []dpkg.Dependency{{Name: "libc6"}},
	}
	for _, t := range names {
		p.Files = append(p.Files, dpkg.PackageFile{
			Path: "/opt/" + s.Vendor + "/bin/" + t,
			Data: []byte("#!vendor-driver " + t + "\n"),
			Mode: 0o755,
		})
	}
	return p
}
