// Package sysprofile describes the HPC systems of the paper's evaluation
// (Table 1): their hardware, interconnect fabrics, vendor toolchains and
// vendor-optimized software stacks, plus constructors for the container
// base images used on the user and system sides of the coMtainer workflow.
package sysprofile

import (
	"fmt"

	"comtainer/internal/dpkg"
	"comtainer/internal/toolchain"
)

// Fabric models a high-speed interconnect with an alpha-beta cost model.
// An MPI library with the fabric's plugin achieves the Native parameters;
// a generic MPI build falls back to TCP emulation with the Fallback ones —
// the root cause of the paper's LULESH-at-scale story (§5.2).
type Fabric struct {
	Name string
	// Native path (vendor MPI with the fabric plugin).
	AlphaNativeUS float64 // per-message latency, microseconds
	BWNativeGBs   float64 // per-node bandwidth, GB/s
	// Fallback path (generic MPI without the plugin).
	AlphaFallbackUS float64
	BWFallbackGBs   float64
}

// System is one HPC cluster: Table 1 plus everything the system side of
// the coMtainer workflow needs (vendor toolchains and optimized stack).
type System struct {
	Name     string
	ISA      string
	CPUModel string
	Sockets  int
	Cores    int // per node
	ClockGHz float64
	RAMGB    int
	Nodes    int
	OSName   string

	// Vendor identifies the system's compiler/library vendor; artifacts
	// built by a toolchain of this vendor get the full compiler gain.
	Vendor string
	// NativeMarch is the micro-architecture of the nodes; -march=native
	// under the vendor toolchain resolves to it.
	NativeMarch string
	// RunnableMarch lists the march values the node CPUs can execute;
	// running a binary built for anything else dies with SIGILL.
	RunnableMarch []string

	// NodePerf is the abstract per-node throughput (work units/second)
	// used by the performance model.
	NodePerf float64

	Fabric Fabric

	// Toolchains is the Sysenv registry (vendor compiler bound to the
	// standard driver names).
	Toolchains *toolchain.Registry
	// GenericToolchains is what a stock base image sees on this ISA.
	GenericToolchains *toolchain.Registry
}

// X86Cluster returns the paper's x86-64 testbed: 16 dual-socket Intel Xeon
// Platinum 8358P nodes on Ubuntu 22.04.
func X86Cluster() *System {
	return &System{
		Name:     "x86-64",
		ISA:      toolchain.ISAx86,
		CPUModel: "Intel Xeon Platinum 8358P @ 2.60GHz",
		Sockets:  2,
		Cores:    64,
		ClockGHz: 2.60,
		RAMGB:    512,
		Nodes:    16,
		OSName:   "Ubuntu 22.04",

		Vendor:        "intellic",
		NativeMarch:   "icelake-server",
		RunnableMarch: []string{"generic", "x86-64", "x86-64-v2", "x86-64-v3", "x86-64-v4", "skylake-avx512", "icelake-server"},
		NodePerf:      1000,

		// The x86 fabric degrades gracefully without the plugin: higher
		// latency but most of the bandwidth survives, so the Fig.-9 gap
		// from communication alone stays small on this system.
		Fabric: Fabric{
			Name:            "IB-HDR200",
			AlphaNativeUS:   1.8,
			BWNativeGBs:     25,
			AlphaFallbackUS: 2.5,
			BWFallbackGBs:   24,
		},

		Toolchains:        toolchain.VendorRegistry(toolchain.ISAx86),
		GenericToolchains: toolchain.GenericRegistry(toolchain.ISAx86),
	}
}

// ArmCluster returns the paper's AArch64 testbed: 16 Phytium FT-2000+/64
// nodes on Kylin Linux Advanced Server V10.
func ArmCluster() *System {
	return &System{
		Name:     "aarch64",
		ISA:      toolchain.ISAArm,
		CPUModel: "Phytium FT-2000+/64 @ 2.2GHz",
		Sockets:  1,
		Cores:    64,
		ClockGHz: 2.2,
		RAMGB:    128,
		Nodes:    16,
		OSName:   "Kylin Linux Advanced Server V10",

		Vendor:        "phytium",
		NativeMarch:   "ft2000plus",
		RunnableMarch: []string{"generic", "armv8-a", "armv8.1-a", "ft2000plus"},
		NodePerf:      320,

		// The proprietary fabric collapses to a slow TCP path without the
		// vendor MPI plugin — communication-bound workloads suffer badly.
		Fabric: Fabric{
			Name:            "FT-fabric",
			AlphaNativeUS:   1.5,
			BWNativeGBs:     20,
			AlphaFallbackUS: 20,
			BWFallbackGBs:   10,
		},

		Toolchains:        toolchain.VendorRegistry(toolchain.ISAArm),
		GenericToolchains: toolchain.GenericRegistry(toolchain.ISAArm),
	}
}

// ByName returns the named cluster ("x86-64" or "aarch64").
func ByName(name string) (*System, error) {
	switch name {
	case "x86-64", "x86_64", "x86":
		return X86Cluster(), nil
	case "aarch64", "arm", "arm64":
		return ArmCluster(), nil
	default:
		return nil, fmt.Errorf("sysprofile: unknown system %q", name)
	}
}

// Both returns the two evaluation clusters in paper order.
func Both() []*System {
	return []*System{X86Cluster(), ArmCluster()}
}

// LLVMRegistry returns the free LLVM toolchain as installed on this
// system's nodes: -march=native resolves to the node micro-architecture,
// but the codegen stays the generic LLVM one. This is the toolchain the
// paper's artifact evaluation ships in place of the proprietary vendor
// compilers ("the improvements can be greatly diminished compared to
// vendor-specific toolchain").
func (s *System) LLVMRegistry() *toolchain.Registry {
	tc := toolchain.LLVM(s.ISA)
	tc.NativeMarch = s.NativeMarch
	have := false
	for _, m := range tc.ValidMarch {
		if m == s.NativeMarch {
			have = true
		}
	}
	if !have {
		tc.ValidMarch = append(tc.ValidMarch, s.NativeMarch)
	}
	r := toolchain.NewRegistry()
	r.Register(tc, "clang", "clang++", "flang")
	return r
}

// CanRun reports whether a binary built for march can execute on the
// system's CPUs.
func (s *System) CanRun(march string) bool {
	for _, m := range s.RunnableMarch {
		if m == march {
			return true
		}
	}
	return false
}

// AptIndex returns the package universe visible on the system side: the
// generic distribution packages overlaid with the vendor-optimized builds
// (which carry higher versions, so resolution prefers them).
func (s *System) AptIndex() *dpkg.Index {
	idx := dpkg.NewIndex()
	for _, p := range GenericPackages(s.ISA) {
		idx.Add(p)
	}
	for _, p := range VendorPackages(s) {
		idx.Add(p)
	}
	return idx
}

// Table1Row is one column of the paper's Table 1.
type Table1Row struct {
	System string
	CPU    string
	RAM    string
	OS     string
	Nodes  int
}

// Table1 returns the testbed description the bench harness prints.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, s := range Both() {
		rows = append(rows, Table1Row{
			System: s.Name,
			CPU:    fmt.Sprintf("%d x %s", s.Sockets, s.CPUModel),
			RAM:    fmt.Sprintf("%dGB", s.RAMGB),
			OS:     s.OSName,
			Nodes:  s.Nodes,
		})
	}
	return rows
}
