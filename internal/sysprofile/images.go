package sysprofile

import (
	"fmt"

	"comtainer/internal/containerfile"
	"comtainer/internal/dpkg"
	"comtainer/internal/fsim"
	"comtainer/internal/oci"
	"comtainer/internal/toolchain"
)

// Image tags this package populates. The user side mirrors the paper's
// Figure 5/6 image set; the system side adds the Sysenv and Rebase images.
const (
	TagUbuntu = "ubuntu:24.04"
	TagEnv    = "comt:ubuntu24.env"
	TagBase   = "comt:ubuntu24.base"
	TagSysenv = "comt:ubuntu24.sysenv"
	TagRebase = "comt:ubuntu24.rebase"
	// TagSysenvLLVM is the redistributable Sysenv alternative built on the
	// free LLVM toolchain (the paper's artifact-evaluation images).
	TagSysenvLLVM = "comt:ubuntu24.sysenv-llvm"
)

// ociArch maps an ISA to the OCI architecture string.
func ociArch(isa string) string {
	if isa == toolchain.ISAArm {
		return "arm64"
	}
	return "amd64"
}

// baseFS builds the distribution root file system for an ISA: os metadata,
// a shell, and the core runtime stack installed through dpkg so the image
// model can attribute every file to its package.
func baseFS(isa string) (*fsim.FS, error) {
	fs := fsim.New()
	fs.WriteFile("/etc/os-release", []byte("PRETTY_NAME=\"Ubuntu 24.04 LTS\"\nID=ubuntu\nVERSION_ID=\"24.04\"\n"), 0o644)
	fs.WriteFile("/bin/sh", []byte("#!shell\n"), 0o755)
	fs.WriteFile("/etc/hostname", []byte("localhost\n"), 0o644)
	db := dpkg.NewDB()
	if err := db.Install(fs, BaseFiles(isa)); err != nil {
		return nil, fmt.Errorf("sysprofile: installing base-files: %w", err)
	}
	for _, spec := range coreSpecs(isa) {
		if err := db.Install(fs, spec.build(isa, "gnu")); err != nil {
			return nil, fmt.Errorf("sysprofile: installing %s: %w", spec.pkg, err)
		}
	}
	return fs, nil
}

// writeImage wraps the FS as a single-layer image with the given role
// label and tags it in repo.
func writeImage(repo *oci.Repository, fs *fsim.FS, isa, tag, role string) error {
	cfg := oci.ImageConfig{
		Architecture: ociArch(isa),
		OS:           "linux",
		Config: oci.ExecConfig{
			Env:    []string{"PATH=/usr/local/bin:/usr/bin:/bin"},
			Cmd:    []string{"/bin/sh"},
			Labels: map[string]string{},
		},
	}
	if role != "" {
		cfg.Config.Labels[containerfile.RoleLabel] = role
	}
	desc, err := oci.WriteImage(repo.Store, cfg, []*fsim.FS{fs})
	if err != nil {
		return fmt.Errorf("sysprofile: writing %s: %w", tag, err)
	}
	repo.Tag(tag, desc)
	return nil
}

// PopulateUserSide writes the user-side base images for an ISA into repo:
// the stock distribution image, coMtainer's Env image (build stage base,
// with the toolchain entry points the hijacker shadows) and coMtainer's
// Base image (dist stage base).
func PopulateUserSide(repo *oci.Repository, isa string) error {
	ub, err := baseFS(isa)
	if err != nil {
		return err
	}
	if err := writeImage(repo, ub, isa, TagUbuntu, containerfile.RoleGeneric); err != nil {
		return err
	}

	env, err := baseFS(isa)
	if err != nil {
		return err
	}
	envDB, err := dpkg.Load(env)
	if err != nil {
		return err
	}
	if err := envDB.Install(env, BuildEssential(isa)); err != nil {
		return err
	}
	// The hijacker home: marks this as an Env-derived container and hosts
	// the raw build log and cache I/O mount point.
	if err := env.MkdirAll("/.comtainer", 0o755); err != nil {
		return err
	}
	env.WriteFile("/.comtainer/hijacker", []byte("#!comtainer-hijacker\n"), 0o755)
	if err := writeImage(repo, env, isa, TagEnv, containerfile.RoleEnv); err != nil {
		return err
	}

	base, err := baseFS(isa)
	if err != nil {
		return err
	}
	if err := writeImage(repo, base, isa, TagBase, containerfile.RoleBase); err != nil {
		return err
	}
	return nil
}

// PopulateSystemSide writes the system-side images for a cluster into
// repo: the Sysenv image (vendor toolchain + optimized stack, the rebuild
// container base) and the Rebase image (redirect container base).
func PopulateSystemSide(repo *oci.Repository, s *System) error {
	sysenv, err := baseFS(s.ISA)
	if err != nil {
		return err
	}
	db, err := dpkg.Load(sysenv)
	if err != nil {
		return err
	}
	if err := db.Install(sysenv, VendorToolchainPackage(s)); err != nil {
		return err
	}
	idx := s.AptIndex()
	// Preinstall the vendor-optimized stack so rebuilt links resolve
	// against optimized libraries.
	for _, spec := range vendorSpecs(s) {
		p, ok := idx.Latest(spec.pkg)
		if !ok {
			return fmt.Errorf("sysprofile: vendor package %s missing from index", spec.pkg)
		}
		if err := db.InstallWithDeps(sysenv, idx, p); err != nil {
			return err
		}
	}
	if err := sysenv.MkdirAll("/.comtainer", 0o755); err != nil {
		return err
	}
	if err := writeImage(repo, sysenv, s.ISA, TagSysenv, containerfile.RoleSysenv); err != nil {
		return err
	}

	rebase, err := baseFS(s.ISA)
	if err != nil {
		return err
	}
	if err := rebase.MkdirAll("/.comtainer", 0o755); err != nil {
		return err
	}
	if err := writeImage(repo, rebase, s.ISA, TagRebase, containerfile.RoleRebase); err != nil {
		return err
	}

	// The redistributable LLVM Sysenv: same optimized runtime stack, free
	// compilers instead of the proprietary vendor suite.
	llvmEnv, err := baseFS(s.ISA)
	if err != nil {
		return err
	}
	llvmDB, err := dpkg.Load(llvmEnv)
	if err != nil {
		return err
	}
	llvmPkg := &dpkg.Package{
		Name:         "llvm-toolchain",
		Version:      "18.1.0-1",
		Architecture: debArch(s.ISA),
		Section:      "devel",
		Description:  "free LLVM compiler suite (artifact-evaluation Sysenv)",
		Vendor:       "llvm",
		Depends:      []dpkg.Dependency{{Name: "libc6"}},
	}
	for _, t := range []string{"clang", "clang++", "flang", "llvm-ar", "gcc", "g++", "cc"} {
		llvmPkg.Files = append(llvmPkg.Files, dpkg.PackageFile{
			Path: "/usr/lib/llvm-18/bin/" + t,
			Data: []byte("#!llvm-driver " + t + "\n"),
			Mode: 0o755,
		})
	}
	if err := llvmDB.Install(llvmEnv, llvmPkg); err != nil {
		return err
	}
	for _, spec := range vendorSpecs(s) {
		p, ok := idx.Latest(spec.pkg)
		if !ok {
			return fmt.Errorf("sysprofile: vendor package %s missing from index", spec.pkg)
		}
		if err := llvmDB.InstallWithDeps(llvmEnv, idx, p); err != nil {
			return err
		}
	}
	if err := llvmEnv.MkdirAll("/.comtainer", 0o755); err != nil {
		return err
	}
	return writeImage(repo, llvmEnv, s.ISA, TagSysenvLLVM, containerfile.RoleSysenv)
}
