package sysprofile

import (
	"strings"
	"testing"

	"comtainer/internal/containerfile"
	"comtainer/internal/dpkg"
	"comtainer/internal/oci"
	"comtainer/internal/toolchain"
)

func TestClusters(t *testing.T) {
	x := X86Cluster()
	a := ArmCluster()
	if x.ISA != toolchain.ISAx86 || a.ISA != toolchain.ISAArm {
		t.Error("ISA wrong")
	}
	if x.Nodes != 16 || a.Nodes != 16 {
		t.Error("Table 1 says 16 nodes each")
	}
	if !x.CanRun("icelake-server") || x.CanRun("ft2000plus") {
		t.Error("x86 runnable march set wrong")
	}
	if !a.CanRun("armv8-a") || a.CanRun("x86-64") {
		t.Error("arm runnable march set wrong")
	}
	// Vendor registries resolve the standard driver names to the vendor.
	tc, ok := x.Toolchains.Lookup("gcc")
	if !ok || tc.Vendor != "intellic" {
		t.Errorf("x86 sysenv gcc = %+v", tc)
	}
	if _, err := ByName("x86-64"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("riscv"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(rows[0].CPU, "8358P") || !strings.Contains(rows[1].CPU, "FT-2000+") {
		t.Errorf("CPU models wrong: %+v", rows)
	}
}

func TestGenericPackagesConsistency(t *testing.T) {
	for _, isa := range []string{toolchain.ISAx86, toolchain.ISAArm} {
		pkgs := GenericPackages(isa)
		byName := map[string]*dpkg.Package{}
		for _, p := range pkgs {
			byName[p.Name] = p
			if p.Optimized {
				t.Errorf("generic package %s marked optimized", p.Name)
			}
		}
		for _, want := range []string{"libc6", "libm6", "libstdc++6", "libopenblas0", "libopenmpi3", "build-essential"} {
			if _, ok := byName[want]; !ok {
				t.Errorf("%s: missing generic package %s", isa, want)
			}
		}
		// Every dependency resolvable within the index.
		idx := GenericIndex(isa)
		for _, p := range pkgs {
			if _, err := idx.Resolve(p.Depends); err != nil {
				t.Errorf("%s: deps of %s unresolvable: %v", isa, p.Name, err)
			}
		}
	}
}

func TestVendorPackagesNewerAndOptimized(t *testing.T) {
	for _, s := range Both() {
		generic := map[string]dpkg.Version{}
		for _, p := range GenericPackages(s.ISA) {
			generic[p.Name] = p.Version
		}
		for _, p := range VendorPackages(s) {
			if !p.Optimized || p.PerfGain <= 1.0 {
				t.Errorf("%s: vendor package %s gain=%f optimized=%v", s.Name, p.Name, p.PerfGain, p.Optimized)
			}
			gv, ok := generic[p.Name]
			if !ok {
				t.Errorf("%s: vendor package %s has no generic counterpart", s.Name, p.Name)
				continue
			}
			if !gv.Less(p.Version) {
				t.Errorf("%s: vendor %s version %s not newer than generic %s", s.Name, p.Name, p.Version, gv)
			}
		}
	}
}

func TestAptIndexPrefersVendor(t *testing.T) {
	s := X86Cluster()
	idx := s.AptIndex()
	p, ok := idx.Latest("libopenblas0")
	if !ok || !p.Optimized {
		t.Errorf("Latest(libopenblas0) = %+v", p)
	}
	// The generic version is still reachable with a constraint.
	q, ok := idx.Find(dpkg.Dependency{Name: "libopenblas0", Op: dpkg.OpLT, Version: p.Version})
	if !ok || q.Optimized {
		t.Errorf("constrained find = %+v", q)
	}
}

func TestMPIPackageCarriesPlugin(t *testing.T) {
	for _, s := range Both() {
		var vendorMPI *dpkg.Package
		for _, p := range VendorPackages(s) {
			if p.Name == "libopenmpi3" {
				vendorMPI = p
			}
		}
		if vendorMPI == nil {
			t.Fatalf("%s: no vendor MPI", s.Name)
		}
		var soData []byte
		for _, f := range vendorMPI.Files {
			if strings.HasSuffix(f.Path, ".so.40") {
				soData = f.Data
			}
		}
		art, err := toolchain.Decode(soData)
		if err != nil {
			t.Fatal(err)
		}
		if !art.MPINetPlugin {
			t.Errorf("%s: vendor MPI lacks fabric plugin", s.Name)
		}
	}
}

func TestPopulateUserSide(t *testing.T) {
	repo := oci.NewRepository()
	if err := PopulateUserSide(repo, toolchain.ISAx86); err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{TagUbuntu, TagEnv, TagBase} {
		img, err := repo.LoadByTag(tag)
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		flat, err := img.Flatten()
		if err != nil {
			t.Fatal(err)
		}
		if !flat.Exists("/usr/lib/libc.so.6") {
			t.Errorf("%s missing libc", tag)
		}
		db, err := dpkg.Load(flat)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := db.Installed("libc6"); !ok {
			t.Errorf("%s: dpkg db missing libc6", tag)
		}
	}
	env, _ := repo.LoadByTag(TagEnv)
	if env.Config.Config.Labels[containerfile.RoleLabel] != containerfile.RoleEnv {
		t.Error("env image missing role label")
	}
	flat, _ := env.Flatten()
	if !flat.Exists("/usr/bin/gcc") || !flat.Exists("/.comtainer/hijacker") {
		t.Error("env image missing toolchain or hijacker")
	}
	// Plain ubuntu has no compiler.
	ub, _ := repo.LoadByTag(TagUbuntu)
	ubFlat, _ := ub.Flatten()
	if ubFlat.Exists("/usr/bin/gcc") {
		t.Error("stock ubuntu ships a compiler")
	}
}

func TestPopulateSystemSide(t *testing.T) {
	s := ArmCluster()
	repo := oci.NewRepository()
	if err := PopulateSystemSide(repo, s); err != nil {
		t.Fatal(err)
	}
	sysenv, err := repo.LoadByTag(TagSysenv)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := sysenv.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if !flat.Exists("/opt/phytium/bin/gcc") {
		t.Error("sysenv missing vendor compiler")
	}
	// Optimized libs preinstalled.
	data, err := flat.ReadFile("/usr/lib/libblas.so.3")
	if err != nil {
		t.Fatal(err)
	}
	art, err := toolchain.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !art.Optimized || art.Vendor != "phytium" {
		t.Errorf("sysenv blas = %+v", art)
	}
	if _, err := repo.LoadByTag(TagRebase); err != nil {
		t.Error(err)
	}
}

func TestBaseImageSizesMatchTable3Shape(t *testing.T) {
	// The x86 stack must be substantially larger than the AArch64 stack
	// (Table 3: ~170 vs ~95 simulated MiB for dist images).
	sizes := map[string]float64{}
	for _, isa := range []string{toolchain.ISAx86, toolchain.ISAArm} {
		repo := oci.NewRepository()
		if err := PopulateUserSide(repo, isa); err != nil {
			t.Fatal(err)
		}
		img, _ := repo.LoadByTag(TagBase)
		flat, _ := img.Flatten()
		sizes[isa] = float64(flat.TotalSize()) / SizeUnit
	}
	x, a := sizes[toolchain.ISAx86], sizes[toolchain.ISAArm]
	if x < 90 || x > 180 {
		t.Errorf("x86 base simulated size = %.1f MiB, want ~105-170 with numeric libs added later", x)
	}
	if a >= x {
		t.Errorf("aarch64 base (%.1f) not smaller than x86 (%.1f)", a, x)
	}
	if x/a < 1.4 || x/a > 2.6 {
		t.Errorf("x86/aarch64 size ratio = %.2f, want roughly 1.8", x/a)
	}
}
