// Package perfmodel estimates workload execution time from binary-artifact
// metadata, the runtime image state, and the target system profile.
//
// The model (DESIGN.md §4) is anchored at each workload's calibrated
// native time: a binary only reaches it if (a) its dynamic libraries
// resolve to vendor-optimized builds in the image it runs from, (b) it was
// compiled by the system's vendor toolchain for the node micro-
// architecture, and (c) its MPI library can drive the high-speed fabric.
// A generic image misses all three, which *is* the adaptability issue.
// LTO and PGO apply multiplicative compute-side factors that may be
// negative, reproducing the paper's per-workload regressions.
package perfmodel

import (
	"fmt"
	"math"
	"strings"

	"comtainer/internal/fsim"
	"comtainer/internal/mpisim"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
	"comtainer/internal/workloads"
)

// instrumentationOverhead multiplies run time of PGO-instrumented builds.
const instrumentationOverhead = 1.25

// Result is the outcome of one estimated run.
type Result struct {
	Seconds     float64
	CompSeconds float64
	CommSeconds float64

	// The factors actually applied, for introspection and ablations.
	LibFraction  float64 // fraction of key libraries resolved as optimized
	LibFactor    float64
	CCFactor     float64
	LibcFactor   float64
	LTOFactor    float64
	PGOFactor    float64
	LayoutFactor float64
	NetPath      mpisim.Path
}

// Calibration is the derived per-workload gain decomposition.
type Calibration struct {
	LibGain float64 // full-stack library speedup (all key libs optimized)
	CCGain  float64 // vendor toolchain at native march
	Penalty float64 // fallback-fabric slowdown for this workload's messages
}

// Calibrate derives the library/compiler gain split for a workload on a
// system from its traits (explicit overrides win).
func Calibrate(t workloads.Traits, sys *sysprofile.System) (Calibration, error) {
	p, err := mpisim.Penalty(sys.Fabric, t.AvgMsgKB)
	if err != nil {
		return Calibration{}, err
	}
	if t.ExplicitLibGain > 0 && t.ExplicitCCGain > 0 {
		return Calibration{LibGain: t.ExplicitLibGain, CCGain: t.ExplicitCCGain, Penalty: p}, nil
	}
	lc := (t.OrigOverNative - t.CommFrac*p) / (1 - t.CommFrac)
	// The native build also enjoys the vendor C runtime (~3%) that
	// adaptation deliberately keeps generic; remove it from the derived
	// compute gap so the original/native ratio lands on target.
	lc /= nativeLibcGain
	if lc < 0.5 {
		lc = 0.5
	}
	if lc < 1 {
		// A net regression comes from "over-aggressive optimizations of
		// system-specific compiler toolchains" (paper §5.2 on hpccg) —
		// optimized libraries never slow a workload down.
		return Calibration{LibGain: 1, CCGain: lc, Penalty: p}, nil
	}
	libGain := math.Pow(lc, t.LibShare)
	return Calibration{LibGain: libGain, CCGain: lc / libGain, Penalty: p}, nil
}

// nativeLibcGain is the vendor C-runtime advantage only native builds get
// (adapters do not replace libc for ABI reasons; see sysprofile.NativeStack).
const nativeLibcGain = 1.03

// layoutShare is the fraction of a workload's profile-guided headroom a
// BOLT-style layout pass recovers (conservatively below full PGO).
const layoutShare = 0.4

// resolveLib finds and decodes the shared library at path in the runtime
// image, following symlinks.
func resolveLib(runFS *fsim.FS, path string) (*toolchain.Artifact, error) {
	resolved, err := runFS.ResolveSymlink(path)
	if err != nil {
		return nil, fmt.Errorf("perfmodel: error while loading shared libraries: %s: cannot open shared object file", path)
	}
	data, err := runFS.ReadFile(resolved)
	if err != nil {
		return nil, fmt.Errorf("perfmodel: error while loading shared libraries: %s: cannot open shared object file", path)
	}
	art, err := toolchain.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("perfmodel: %s: not a valid shared object", path)
	}
	return art, nil
}

// Estimate computes the execution time of running bin (loaded from runFS)
// for the given workload on sys across nodes.
func Estimate(sys *sysprofile.System, ref workloads.Ref, bin *toolchain.Artifact, runFS *fsim.FS, nodes int) (Result, error) {
	if nodes < 1 {
		return Result{}, fmt.Errorf("perfmodel: node count %d out of range", nodes)
	}
	if bin.Kind != toolchain.KindExecutable {
		return Result{}, fmt.Errorf("perfmodel: %s is a %s, not an executable", bin.Name, bin.Kind)
	}
	// The two classic failure modes of foreign binaries.
	if bin.TargetISA != sys.ISA {
		return Result{}, fmt.Errorf("perfmodel: cannot execute binary file: exec format error (binary is %s, system is %s)",
			bin.TargetISA, sys.ISA)
	}
	if bin.March != "mixed" && !sys.CanRun(bin.March) {
		return Result{}, fmt.Errorf("perfmodel: illegal instruction (binary built for %s, CPUs are %s)",
			bin.March, sys.NativeMarch)
	}

	t, err := workloads.TraitsFor(ref.ID(), sys.Name)
	if err != nil {
		return Result{}, err
	}
	cal, err := Calibrate(t, sys)
	if err != nil {
		return Result{}, err
	}

	// --- Dynamic loading: every recorded library must resolve. ---
	var mpiArt *toolchain.Artifact
	var libcArt *toolchain.Artifact
	keyLibs := ref.App.KeyLibSOs()
	optimizedKey := 0
	seenKey := map[string]bool{}
	for _, libPath := range bin.DynamicLibs {
		art, err := resolveLib(runFS, libPath)
		if err != nil {
			return Result{}, err
		}
		if art.TargetISA != sys.ISA {
			return Result{}, fmt.Errorf("perfmodel: %s: wrong ELF class (built for %s)", libPath, art.TargetISA)
		}
		base := art.Name
		if strings.Contains(libPath, "libmpi") || base == "libmpi" {
			mpiArt = art
		}
		if base == "libc" {
			libcArt = art
		}
		for _, k := range keyLibs {
			if base == k && !seenKey[k] {
				seenKey[k] = true
				if art.Optimized {
					optimizedKey++
				}
			}
		}
	}
	// Key libraries not dynamically linked count as unoptimized: either
	// they were linked statically from the generic archive or the app
	// carries its own fallback implementation.
	libFrac := 0.0
	if len(keyLibs) > 0 {
		libFrac = float64(optimizedKey) / float64(len(keyLibs))
	}

	// --- Factor assembly. ---
	libFactor := 1 + libFrac*(cal.LibGain-1)
	ccFactor := 1.0
	switch {
	case bin.Vendor == sys.Vendor && bin.March == sys.NativeMarch:
		ccFactor = cal.CCGain
	case bin.Vendor == sys.Vendor:
		// Vendor compiler without node-specific tuning: most of the gain.
		ccFactor = 1 + 0.7*(cal.CCGain-1)
	case bin.March == sys.NativeMarch:
		// Stock compiler with -march=native on the node: a sliver.
		ccFactor = 1 + 0.3*(cal.CCGain-1)
	}
	libcFactor := 1.0
	if libcArt != nil && libcArt.Optimized && libcArt.PerfGain > 1 {
		libcFactor = libcArt.PerfGain
	}
	ltoFactor := 1.0
	if bin.LTO {
		ltoFactor = 1 + t.LTOGain
	}
	pgoFactor := 1.0
	if bin.PGOOptimized {
		pgoFactor = 1 + t.PGOGain
	}
	// BOLT-style layout optimization recovers a fraction of the
	// profile-guided headroom on top of (or independent of) PGO — layout
	// and inlining decisions overlap but are not identical.
	layoutFactor := 1.0
	if bin.LayoutOptimized && t.PGOGain > 0 {
		layoutFactor = 1 + layoutShare*t.PGOGain
	}

	// --- Compute side. ---
	nativeComp16 := t.NativeSec * (1 - t.CommFrac)
	nativeComp := nativeComp16 * 16 / float64(nodes)
	comp := nativeComp * (cal.LibGain * cal.CCGain * nativeLibcGain) /
		(libFactor * ccFactor * libcFactor * ltoFactor * pgoFactor * layoutFactor)
	if bin.PGOInstrumented {
		comp *= instrumentationOverhead
	}

	// --- Communication side. ---
	nativeComm16 := t.NativeSec * t.CommFrac
	nativeComm := nativeComm16 * float64(nodes-1) / 15.0
	comm, err := mpisim.CommTime(sys.Fabric, mpiArt, nodes, nativeComm, t.AvgMsgKB)
	if err != nil {
		return Result{}, err
	}

	return Result{
		Seconds:      comp + comm,
		CompSeconds:  comp,
		CommSeconds:  comm,
		LibFraction:  libFrac,
		LibFactor:    libFactor,
		CCFactor:     ccFactor,
		LibcFactor:   libcFactor,
		LTOFactor:    ltoFactor,
		PGOFactor:    pgoFactor,
		LayoutFactor: layoutFactor,
		NetPath:      mpisim.PathFor(mpiArt, nodes),
	}, nil
}
