package perfmodel

import (
	"testing"
	"testing/quick"

	"comtainer/internal/sysprofile"
	"comtainer/internal/workloads"
)

// TestPropertyStrongScalingCompute: compute time shrinks monotonically
// with node count for every workload (the model is strong-scaling on the
// compute side).
func TestPropertyStrongScalingCompute(t *testing.T) {
	sys := sysprofile.X86Cluster()
	var ref workloads.Ref
	for _, r := range workloads.AllRefs() {
		if r.ID() == "minife" {
			ref = r
		}
	}
	fs := runEnv(t, sys, ref.App, true, false)
	bin := binaryFor(sys, ref.App, "adapted")
	f := func(nRaw uint8) bool {
		n := int(nRaw%15) + 1
		a, err := Estimate(sys, ref, bin, fs, n)
		if err != nil {
			return false
		}
		b, err := Estimate(sys, ref, bin, fs, n+1)
		if err != nil {
			return false
		}
		return b.CompSeconds < a.CompSeconds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyOptimizedLibsNeverSlower: for every workload and system,
// swapping in the optimized stack never increases run time.
func TestPropertyOptimizedLibsNeverSlower(t *testing.T) {
	for _, sys := range sysprofile.Both() {
		for _, ref := range workloads.AllRefs() {
			bin := binaryFor(sys, ref.App, "original")
			generic := runEnv(t, sys, ref.App, false, false)
			optimized := runEnv(t, sys, ref.App, true, false)
			a, err := Estimate(sys, ref, bin, generic, 16)
			if err != nil {
				t.Fatalf("%s/%s: %v", sys.Name, ref.ID(), err)
			}
			b, err := Estimate(sys, ref, bin, optimized, 16)
			if err != nil {
				t.Fatalf("%s/%s: %v", sys.Name, ref.ID(), err)
			}
			if b.Seconds > a.Seconds+1e-9 {
				t.Errorf("%s/%s: optimized libs slowed the run: %.3f -> %.3f",
					sys.Name, ref.ID(), a.Seconds, b.Seconds)
			}
		}
	}
}

// TestPropertyDeterministicEstimates: the model is a pure function of its
// inputs.
func TestPropertyDeterministicEstimates(t *testing.T) {
	sys := sysprofile.ArmCluster()
	var ref workloads.Ref
	for _, r := range workloads.AllRefs() {
		if r.ID() == "lammps.lj" {
			ref = r
		}
	}
	fs := runEnv(t, sys, ref.App, true, true)
	bin := binaryFor(sys, ref.App, "optimized")
	f := func(nRaw uint8) bool {
		n := int(nRaw%16) + 1
		a, err1 := Estimate(sys, ref, bin, fs, n)
		b, err2 := Estimate(sys, ref, bin, fs, n)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCommGrowsWithNodes: communication time never shrinks when
// nodes are added.
func TestPropertyCommGrowsWithNodes(t *testing.T) {
	sys := sysprofile.ArmCluster()
	var ref workloads.Ref
	for _, r := range workloads.AllRefs() {
		if r.ID() == "lulesh" {
			ref = r
		}
	}
	fs := runEnv(t, sys, ref.App, false, false)
	bin := binaryFor(sys, ref.App, "original")
	prev := -1.0
	for n := 1; n <= 16; n++ {
		res, err := Estimate(sys, ref, bin, fs, n)
		if err != nil {
			t.Fatal(err)
		}
		if res.CommSeconds < prev {
			t.Errorf("comm time shrank at %d nodes: %.3f -> %.3f", n, prev, res.CommSeconds)
		}
		prev = res.CommSeconds
	}
}
