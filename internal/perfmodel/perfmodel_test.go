package perfmodel

import (
	"strings"
	"testing"

	"comtainer/internal/dpkg"
	"comtainer/internal/fsim"
	"comtainer/internal/mpisim"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
	"comtainer/internal/workloads"
)

// runEnv builds a runtime FS for an app: generic stack, optionally with
// the system's optimized packages overlaid (and optionally native libc).
func runEnv(t *testing.T, sys *sysprofile.System, app *workloads.App, vendorLibs, nativeLibc bool) *fsim.FS {
	t.Helper()
	fs := fsim.New()
	db := dpkg.NewDB()
	idx := sysprofile.GenericIndex(sys.ISA)
	install := func(name string) {
		p, ok := idx.Latest(name)
		if !ok {
			t.Fatalf("package %s missing", name)
		}
		if err := db.InstallWithDeps(fs, idx, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []string{"libc6", "libm6", "libstdc++6", "libgomp1", "zlib1g"} {
		install(n)
	}
	for _, n := range app.RuntimePkgs {
		install(n)
	}
	if vendorLibs {
		for _, p := range sysprofile.VendorPackages(sys) {
			if err := db.Install(fs, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if nativeLibc {
		for _, p := range sysprofile.NativePackages(sys) {
			if err := db.Install(fs, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	return fs
}

// binaryFor synthesizes the executable artifact a given scheme's build
// pipeline would produce.
func binaryFor(sys *sysprofile.System, app *workloads.App, scheme string) *toolchain.Artifact {
	libPaths := func() []string {
		var out []string
		out = append(out, "/usr/lib/libc.so.6")
		for _, l := range app.Libs {
			out = append(out, "/usr/lib/lib"+l+".so")
		}
		if app.Language == "c++" {
			out = append(out, "/usr/lib/libstdc++.so.6")
		}
		return out
	}
	a := &toolchain.Artifact{
		Kind:        toolchain.KindExecutable,
		Name:        app.Name,
		TargetISA:   sys.ISA,
		DynamicLibs: libPaths(),
		OptLevel:    "2",
	}
	switch scheme {
	case "original":
		a.Toolchain = "gnu-gcc-13"
		a.Vendor = "gnu"
		a.March = "x86-64"
		if sys.ISA == toolchain.ISAArm {
			a.March = "armv8-a"
		}
	case "native", "adapted":
		a.Toolchain = "vendor"
		a.Vendor = sys.Vendor
		a.March = sys.NativeMarch
	case "optimized":
		a.Toolchain = "vendor"
		a.Vendor = sys.Vendor
		a.March = sys.NativeMarch
		a.LTO = true
		a.PGOOptimized = true
	}
	return a
}

func estimate(t *testing.T, sys *sysprofile.System, id string, scheme string, nodes int) Result {
	t.Helper()
	var ref workloads.Ref
	for _, r := range workloads.AllRefs() {
		if r.ID() == id {
			ref = r
		}
	}
	if ref.App == nil {
		t.Fatalf("unknown workload %s", id)
	}
	fs := runEnv(t, sys, ref.App, scheme != "original", scheme == "native")
	bin := binaryFor(sys, ref.App, scheme)
	res, err := Estimate(sys, ref, bin, fs, nodes)
	if err != nil {
		t.Fatalf("Estimate(%s, %s): %v", id, scheme, err)
	}
	return res
}

func TestSchemeOrdering(t *testing.T) {
	// For every workload and system: original slower than adapted;
	// adapted within a few percent of native.
	for _, sys := range sysprofile.Both() {
		for _, ref := range workloads.AllRefs() {
			id := ref.ID()
			orig := estimate(t, sys, id, "original", 16).Seconds
			adapted := estimate(t, sys, id, "adapted", 16).Seconds
			native := estimate(t, sys, id, "native", 16).Seconds
			tr, _ := workloads.TraitsFor(id, sys.Name)
			if tr.OrigOverNative > 1.05 && orig <= adapted {
				t.Errorf("%s/%s: original (%.2f) not slower than adapted (%.2f)", sys.Name, id, orig, adapted)
			}
			if adapted < native {
				t.Errorf("%s/%s: adapted (%.2f) faster than native (%.2f)", sys.Name, id, adapted, native)
			}
			if adapted > native*1.08 {
				t.Errorf("%s/%s: adapted (%.2f) not comparable to native (%.2f)", sys.Name, id, adapted, native)
			}
		}
	}
}

func TestNativeMatchesCalibration(t *testing.T) {
	for _, sys := range sysprofile.Both() {
		for _, ref := range workloads.AllRefs() {
			tr, _ := workloads.TraitsFor(ref.ID(), sys.Name)
			native := estimate(t, sys, ref.ID(), "native", 16).Seconds
			if native < tr.NativeSec*0.97 || native > tr.NativeSec*1.03 {
				t.Errorf("%s/%s: native = %.2f, calibrated %.2f", sys.Name, ref.ID(), native, tr.NativeSec)
			}
			orig := estimate(t, sys, ref.ID(), "original", 16).Seconds
			ratio := orig / native
			if ratio < tr.OrigOverNative*0.85 || ratio > tr.OrigOverNative*1.15 {
				t.Errorf("%s/%s: orig/native = %.3f, calibrated %.3f", sys.Name, ref.ID(), ratio, tr.OrigOverNative)
			}
		}
	}
}

func TestOptimizedScheme(t *testing.T) {
	// openmx.pt13 on x86: the best LTO+PGO result (+30.4% over adapted).
	adapted := estimate(t, sysprofile.X86Cluster(), "openmx.pt13", "adapted", 16).Seconds
	optimized := estimate(t, sysprofile.X86Cluster(), "openmx.pt13", "optimized", 16).Seconds
	gain := adapted/optimized - 1
	if gain < 0.20 || gain > 0.40 {
		t.Errorf("openmx.pt13 optimized gain = %.3f, want ~0.30", gain)
	}
	// lammps.chain on x86: the regression (-12.1%).
	adapted = estimate(t, sysprofile.X86Cluster(), "lammps.chain", "adapted", 16).Seconds
	optimized = estimate(t, sysprofile.X86Cluster(), "lammps.chain", "optimized", 16).Seconds
	if optimized <= adapted {
		t.Error("lammps.chain LTO+PGO should regress on x86")
	}
}

func TestLuleshCommunicationStory(t *testing.T) {
	// At 16 nodes the generic MPI's fallback path dominates on AArch64
	// (+231%) but barely matters on x86 (+15.6%).
	arm := sysprofile.ArmCluster()
	x86 := sysprofile.X86Cluster()
	armRatio := estimate(t, arm, "lulesh", "original", 16).Seconds /
		estimate(t, arm, "lulesh", "native", 16).Seconds
	x86Ratio := estimate(t, x86, "lulesh", "original", 16).Seconds /
		estimate(t, x86, "lulesh", "native", 16).Seconds
	if armRatio < 2.6 || armRatio > 4.0 {
		t.Errorf("lulesh aarch64 orig/native = %.2f, want ~3.3", armRatio)
	}
	if x86Ratio < 1.05 || x86Ratio > 1.45 {
		t.Errorf("lulesh x86 orig/native = %.2f, want ~1.16", x86Ratio)
	}
	// On one node (Figure 3) the gap is pure compute and much larger on
	// x86 than the 16-node number suggests.
	x86Ratio1 := estimate(t, x86, "lulesh", "original", 1).Seconds /
		estimate(t, x86, "lulesh", "native", 1).Seconds
	if x86Ratio1 < 1.8 || x86Ratio1 > 2.3 {
		t.Errorf("lulesh x86 1-node orig/native = %.2f, want ~2.0 (Fig 3)", x86Ratio1)
	}
	res := estimate(t, arm, "lulesh", "original", 16)
	if res.NetPath != mpisim.PathFallback {
		t.Error("generic image should be on the fallback path")
	}
	res = estimate(t, arm, "lulesh", "adapted", 16)
	if res.NetPath != mpisim.PathNative {
		t.Error("adapted image should ride the native fabric")
	}
}

func TestPartialLibraryReplacement(t *testing.T) {
	// Replacing only some key libraries yields an intermediate time.
	sys := sysprofile.X86Cluster()
	var ref workloads.Ref
	for _, r := range workloads.AllRefs() {
		if r.ID() == "openmx.pt13" {
			ref = r
		}
	}
	bin := binaryFor(sys, ref.App, "original")

	genericFS := runEnv(t, sys, ref.App, false, false)
	allFS := runEnv(t, sys, ref.App, true, false)
	partialFS := runEnv(t, sys, ref.App, false, false)
	// Replace only BLAS in the partial image.
	db, err := dpkg.Load(partialFS)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sysprofile.VendorPackages(sys) {
		if p.Name == "libopenblas0" {
			if err := db.Install(partialFS, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	tGeneric, err := Estimate(sys, ref, bin, genericFS, 16)
	if err != nil {
		t.Fatal(err)
	}
	tPartial, err := Estimate(sys, ref, bin, partialFS, 16)
	if err != nil {
		t.Fatal(err)
	}
	tAll, err := Estimate(sys, ref, bin, allFS, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !(tAll.Seconds < tPartial.Seconds && tPartial.Seconds < tGeneric.Seconds) {
		t.Errorf("partial replacement not between: all=%.2f partial=%.2f generic=%.2f",
			tAll.Seconds, tPartial.Seconds, tGeneric.Seconds)
	}
	if tPartial.LibFraction <= 0 || tPartial.LibFraction >= 1 {
		t.Errorf("partial LibFraction = %f", tPartial.LibFraction)
	}
}

func TestRuntimeFailures(t *testing.T) {
	sys := sysprofile.X86Cluster()
	var ref workloads.Ref
	for _, r := range workloads.AllRefs() {
		if r.ID() == "comd" {
			ref = r
		}
	}
	fs := runEnv(t, sys, ref.App, false, false)

	// Foreign ISA binary.
	bin := binaryFor(sysprofile.ArmCluster(), ref.App, "original")
	if _, err := Estimate(sys, ref, bin, fs, 16); err == nil || !strings.Contains(err.Error(), "exec format") {
		t.Errorf("foreign ISA err = %v", err)
	}
	// March the CPU cannot run.
	bin = binaryFor(sys, ref.App, "original")
	bin.March = "ft2000plus"
	bin.TargetISA = sys.ISA
	if _, err := Estimate(sys, ref, bin, fs, 16); err == nil || !strings.Contains(err.Error(), "illegal instruction") {
		t.Errorf("bad march err = %v", err)
	}
	// Missing shared library.
	bin = binaryFor(sys, ref.App, "original")
	bin.DynamicLibs = append(bin.DynamicLibs, "/usr/lib/libexotic.so.9")
	if _, err := Estimate(sys, ref, bin, fs, 16); err == nil || !strings.Contains(err.Error(), "loading shared libraries") {
		t.Errorf("missing lib err = %v", err)
	}
	// Not an executable.
	obj := &toolchain.Artifact{Kind: toolchain.KindObject, TargetISA: sys.ISA, March: "x86-64"}
	if _, err := Estimate(sys, ref, obj, fs, 16); err == nil {
		t.Error("object accepted as executable")
	}
	// Bad node count.
	bin = binaryFor(sys, ref.App, "original")
	if _, err := Estimate(sys, ref, bin, fs, 0); err == nil {
		t.Error("0 nodes accepted")
	}
}

func TestInstrumentedBinarySlowdown(t *testing.T) {
	sys := sysprofile.X86Cluster()
	var ref workloads.Ref
	for _, r := range workloads.AllRefs() {
		if r.ID() == "comd" {
			ref = r
		}
	}
	fs := runEnv(t, sys, ref.App, true, false)
	plain := binaryFor(sys, ref.App, "adapted")
	instr := binaryFor(sys, ref.App, "adapted")
	instr.PGOInstrumented = true
	tPlain, err := Estimate(sys, ref, plain, fs, 16)
	if err != nil {
		t.Fatal(err)
	}
	tInstr, err := Estimate(sys, ref, instr, fs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tInstr.CompSeconds <= tPlain.CompSeconds*1.1 {
		t.Errorf("instrumentation overhead missing: %.3f vs %.3f", tInstr.CompSeconds, tPlain.CompSeconds)
	}
}

func TestCalibrateExplicitAndDerived(t *testing.T) {
	sys := sysprofile.X86Cluster()
	lulesh, _ := workloads.TraitsFor("lulesh", sys.Name)
	cal, err := Calibrate(lulesh, sys)
	if err != nil {
		t.Fatal(err)
	}
	if cal.LibGain != 1.50 || cal.CCGain != 1.333 {
		t.Errorf("explicit calibration not honored: %+v", cal)
	}
	hpl, _ := workloads.TraitsFor("hpl", sys.Name)
	cal, err = Calibrate(hpl, sys)
	if err != nil {
		t.Fatal(err)
	}
	if cal.LibGain <= 1 || cal.CCGain <= 1 {
		t.Errorf("derived gains not positive: %+v", cal)
	}
	// hpccg: gains below 1 (vendor toolchain regression).
	hpccg, _ := workloads.TraitsFor("hpccg", sys.Name)
	cal, err = Calibrate(hpccg, sys)
	if err != nil {
		t.Fatal(err)
	}
	if cal.CCGain >= 1 {
		t.Errorf("hpccg CCGain = %f, want < 1", cal.CCGain)
	}
}
