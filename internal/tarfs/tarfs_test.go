package tarfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"comtainer/internal/digest"
	"comtainer/internal/fsim"
)

func sampleFS() *fsim.FS {
	f := fsim.New()
	f.WriteFile("/app/lulesh", []byte("binary-contents"), 0o755)
	f.WriteFile("/etc/conf", []byte("key=value\n"), 0o644)
	f.MkdirAll("/var/empty", 0o700)
	f.Symlink("/app/lulesh", "/usr/local/bin/lulesh")
	f.WriteFile("/usr/lib/.wh.libold.so", nil, 0o000)
	return f
}

func TestRoundTrip(t *testing.T) {
	orig := sampleFS()
	data, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(back) {
		t.Errorf("round trip mismatch:\norig=%v\nback=%v", orig.Paths(), back.Paths())
	}
}

func TestGzipRoundTrip(t *testing.T) {
	orig := sampleFS()
	data, err := MarshalGzip(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalGzip(data)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(back) {
		t.Error("gzip round trip mismatch")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Marshal(sampleFS())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(sampleFS())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("Marshal is not deterministic")
	}
	if digest.FromBytes(a) != digest.FromBytes(b) {
		t.Error("digests differ")
	}
	ga, err := MarshalGzip(sampleFS())
	if err != nil {
		t.Fatal(err)
	}
	gb, err := MarshalGzip(sampleFS())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ga, gb) {
		t.Error("MarshalGzip is not deterministic")
	}
}

func TestInsertionOrderIrrelevant(t *testing.T) {
	a := fsim.New()
	a.WriteFile("/x", []byte("1"), 0o644)
	a.WriteFile("/y", []byte("2"), 0o644)
	b := fsim.New()
	b.WriteFile("/y", []byte("2"), 0o644)
	b.WriteFile("/x", []byte("1"), 0o644)
	ta, _ := Marshal(a)
	tb, _ := Marshal(b)
	if !bytes.Equal(ta, tb) {
		t.Error("entry insertion order leaked into archive bytes")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("this is not a tar archive at all, definitely not")); err == nil {
		t.Error("Unmarshal accepted garbage")
	}
	if _, err := UnmarshalGzip([]byte("not gzip")); err == nil {
		t.Error("UnmarshalGzip accepted garbage")
	}
}

func TestEmptyFS(t *testing.T) {
	data, err := Marshal(fsim.New())
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("empty FS round trip has %d entries", back.Len())
	}
}

func randomFS(seed int64) *fsim.FS {
	rng := rand.New(rand.NewSource(seed))
	f := fsim.New()
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("/d%d/f%d", rng.Intn(4), rng.Intn(50))
		switch rng.Intn(3) {
		case 0:
			data := make([]byte, rng.Intn(200))
			rng.Read(data)
			f.WriteFile(p, data, 0o644)
		case 1:
			f.MkdirAll(p+"dir", 0o755)
		case 2:
			f.Symlink(fmt.Sprintf("../t%d", rng.Intn(9)), p+"ln")
		}
	}
	return f
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		orig := randomFS(seed)
		data, err := Marshal(orig)
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return orig.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDeterministicDigest(t *testing.T) {
	f := func(seed int64) bool {
		a, err1 := Marshal(randomFS(seed))
		b, err2 := Marshal(randomFS(seed))
		return err1 == nil && err2 == nil && digest.FromBytes(a) == digest.FromBytes(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
