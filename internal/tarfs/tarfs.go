// Package tarfs serializes fsim file systems as deterministic tar archives,
// the byte format of OCI image layers.
//
// Marshal always produces identical bytes for identical file systems:
// entries are emitted in sorted path order, all timestamps are the Unix
// epoch, and ownership is root:root. This determinism is what makes layer
// digests (and therefore image digests) reproducible, a property the
// coMtainer cache layer relies on — re-running coMtainer-build on the same
// dist image must yield the same extended image.
package tarfs

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"path"
	"strings"
	"time"

	"comtainer/internal/fsim"
)

// epoch is the fixed modification time used for every entry.
var epoch = time.Unix(0, 0).UTC()

// Marshal encodes fs as an uncompressed deterministic tar archive.
func Marshal(fs *fsim.FS) ([]byte, error) {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	err := fs.Walk(func(f *fsim.File) error {
		hdr := &tar.Header{
			Name:    strings.TrimPrefix(f.Path, "/"),
			Mode:    int64(f.Mode.Perm()),
			ModTime: epoch,
			Uname:   "root",
			Gname:   "root",
			Format:  tar.FormatPAX,
		}
		switch f.Type {
		case fsim.TypeDir:
			hdr.Typeflag = tar.TypeDir
			hdr.Name += "/"
		case fsim.TypeSymlink:
			hdr.Typeflag = tar.TypeSymlink
			hdr.Linkname = f.Target
		case fsim.TypeRegular:
			hdr.Typeflag = tar.TypeReg
			hdr.Size = f.Size()
		default:
			return fmt.Errorf("tarfs: unsupported file type %v at %s", f.Type, f.Path)
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return fmt.Errorf("tarfs: writing header for %s: %w", f.Path, err)
		}
		if f.Type == fsim.TypeRegular {
			if _, err := tw.Write(f.Data); err != nil {
				return fmt.Errorf("tarfs: writing data for %s: %w", f.Path, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := tw.Close(); err != nil {
		return nil, fmt.Errorf("tarfs: closing archive: %w", err)
	}
	return buf.Bytes(), nil
}

// safeEntryName sanitizes a tar entry name into a rooted in-image path.
// Absolute names and names that climb out of the archive root with ".."
// are rejected rather than silently re-rooted: a layer carrying such
// entries is malformed at best and a path-traversal attempt at worst,
// and must never influence paths outside the image it describes.
func safeEntryName(name string) (string, error) {
	if name == "" {
		return "", fmt.Errorf("tarfs: empty entry name")
	}
	if strings.HasPrefix(name, "/") {
		return "", fmt.Errorf("tarfs: absolute entry name %q", name)
	}
	cleaned := path.Clean(name)
	if cleaned == ".." || strings.HasPrefix(cleaned, "../") {
		return "", fmt.Errorf("tarfs: entry name %q escapes the archive root", name)
	}
	return fsim.Clean("/" + cleaned), nil
}

// Unmarshal decodes a tar archive into a file system. Whiteout entries are
// preserved verbatim as files so that fsim.Apply can interpret them. Entry
// names are validated by safeEntryName; archives with absolute or
// root-escaping names are rejected.
func Unmarshal(data []byte) (*fsim.FS, error) {
	tr := tar.NewReader(bytes.NewReader(data))
	out := fsim.New()
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tarfs: reading archive: %w", err)
		}
		p, err := safeEntryName(hdr.Name)
		if err != nil {
			return nil, err
		}
		mode := hdr.FileInfo().Mode().Perm()
		switch hdr.Typeflag {
		case tar.TypeDir:
			if err := out.MkdirAll(p, mode); err != nil {
				return nil, fmt.Errorf("tarfs: %w", err)
			}
		case tar.TypeSymlink:
			out.Symlink(hdr.Linkname, p)
		case tar.TypeReg:
			data, err := io.ReadAll(tr)
			if err != nil {
				return nil, fmt.Errorf("tarfs: reading %s: %w", p, err)
			}
			out.WriteFile(p, data, mode)
		default:
			return nil, fmt.Errorf("tarfs: unsupported tar entry type %q at %s", hdr.Typeflag, p)
		}
	}
	return out, nil
}

// MarshalGzip encodes fs as a gzip-compressed deterministic tar archive,
// the +gzip layer media type.
func MarshalGzip(fs *fsim.FS) ([]byte, error) {
	raw, err := Marshal(fs)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	gz, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("tarfs: creating gzip writer: %w", err)
	}
	// Zero the gzip mtime for determinism.
	gz.ModTime = epoch
	if _, err := gz.Write(raw); err != nil {
		gz.Close()
		return nil, fmt.Errorf("tarfs: compressing: %w", err)
	}
	if err := gz.Close(); err != nil {
		return nil, fmt.Errorf("tarfs: closing gzip stream: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalGzip decodes a gzip-compressed tar archive.
func UnmarshalGzip(data []byte) (*fsim.FS, error) {
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("tarfs: opening gzip stream: %w", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		gz.Close()
		return nil, fmt.Errorf("tarfs: decompressing: %w", err)
	}
	if err := gz.Close(); err != nil {
		return nil, fmt.Errorf("tarfs: closing gzip stream: %w", err)
	}
	return Unmarshal(raw)
}
