package tarfs

import (
	"archive/tar"
	"bytes"
	"strings"
	"testing"
)

// rawTar builds a one-entry archive with an arbitrary (possibly
// malicious) entry name, bypassing Marshal's own path handling.
func rawTar(t *testing.T, name string) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	data := []byte("owned")
	hdr := &tar.Header{Name: name, Mode: 0o644, Size: int64(len(data)), Typeflag: tar.TypeReg}
	if err := tw.WriteHeader(hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestUnmarshalRejectsEscapingNames is the Zip-Slip regression test: a
// crafted layer whose entry names climb out of the archive root or are
// absolute must be rejected, not silently re-rooted.
func TestUnmarshalRejectsEscapingNames(t *testing.T) {
	cases := []struct{ name, wantErr string }{
		{"../escape", "escapes"},
		{"a/../../escape", "escapes"},
		{"..", "escapes"},
		{"../../../../etc/cron.d/evil", "escapes"},
		{"/etc/passwd", "absolute"},
	}
	for _, c := range cases {
		_, err := Unmarshal(rawTar(t, c.name))
		if err == nil {
			t.Errorf("Unmarshal accepted malicious entry %q", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("entry %q: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

// TestUnmarshalNormalizesInteriorDotDot: ".." that stays inside the
// root is legal tar and must normalize, not fail.
func TestUnmarshalNormalizesInteriorDotDot(t *testing.T) {
	fs, err := Unmarshal(rawTar(t, "a/../b"))
	if err != nil {
		t.Fatalf("Unmarshal rejected a contained interior ..: %v", err)
	}
	if !fs.Exists("/b") {
		t.Errorf("entry a/../b did not normalize to /b; have %v", fs.Paths())
	}
}
