// Package rpm implements RPM's version model: NEVRA parsing and the
// rpmvercmp ordering algorithm.
//
// The paper's prototype "only implements parsing for dpkg/apt and supports
// Debian-based distributions only. However, our approach is equally
// applicable to other package managers, such as RPM" (§4.6). This package
// backs that claim: it provides the version semantics an RPM-based system
// adapter needs for the libo package-replacement decision, mirroring what
// internal/dpkg provides for Debian systems.
package rpm

import (
	"fmt"
	"strconv"
	"strings"
)

// EVR is an RPM epoch-version-release triple.
type EVR struct {
	Epoch   int
	Version string
	Release string
}

// ParseEVR parses "[epoch:]version[-release]".
func ParseEVR(s string) (EVR, error) {
	out := EVR{}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		e, err := strconv.Atoi(s[:i])
		if err != nil || e < 0 {
			return EVR{}, fmt.Errorf("rpm: invalid epoch in %q", s)
		}
		out.Epoch = e
		s = s[i+1:]
	}
	if i := strings.LastIndexByte(s, '-'); i >= 0 {
		out.Release = s[i+1:]
		s = s[:i]
	}
	if s == "" {
		return EVR{}, fmt.Errorf("rpm: empty version")
	}
	out.Version = s
	return out, nil
}

// String renders the EVR back to its canonical form.
func (e EVR) String() string {
	s := e.Version
	if e.Epoch > 0 {
		s = fmt.Sprintf("%d:%s", e.Epoch, s)
	}
	if e.Release != "" {
		s += "-" + e.Release
	}
	return s
}

// Compare orders two EVRs: epoch first, then version, then release, each
// by rpmvercmp.
func (e EVR) Compare(other EVR) int {
	switch {
	case e.Epoch < other.Epoch:
		return -1
	case e.Epoch > other.Epoch:
		return 1
	}
	if c := Vercmp(e.Version, other.Version); c != 0 {
		return c
	}
	return Vercmp(e.Release, other.Release)
}

// Less reports whether e sorts strictly before other.
func (e EVR) Less(other EVR) bool { return e.Compare(other) < 0 }

// NEVRA is a fully qualified RPM package identity:
// name-[epoch:]version-release.arch.
type NEVRA struct {
	Name string
	EVR
	Arch string
}

// ParseNEVRA parses "name-[epoch:]version-release.arch", the filename-ish
// form (e.g. "openblas-0.3.26-3.el9.x86_64").
func ParseNEVRA(s string) (NEVRA, error) {
	archIdx := strings.LastIndexByte(s, '.')
	if archIdx < 0 {
		return NEVRA{}, fmt.Errorf("rpm: %q has no architecture suffix", s)
	}
	arch := s[archIdx+1:]
	rest := s[:archIdx]
	relIdx := strings.LastIndexByte(rest, '-')
	if relIdx < 0 {
		return NEVRA{}, fmt.Errorf("rpm: %q has no release", s)
	}
	release := rest[relIdx+1:]
	rest = rest[:relIdx]
	verIdx := strings.LastIndexByte(rest, '-')
	if verIdx < 0 {
		return NEVRA{}, fmt.Errorf("rpm: %q has no version", s)
	}
	name := rest[:verIdx]
	evr, err := ParseEVR(rest[verIdx+1:])
	if err != nil {
		return NEVRA{}, err
	}
	evr.Release = release
	if name == "" || arch == "" {
		return NEVRA{}, fmt.Errorf("rpm: malformed NEVRA %q", s)
	}
	return NEVRA{Name: name, EVR: evr, Arch: arch}, nil
}

// String renders the NEVRA back to its canonical form.
func (n NEVRA) String() string {
	return fmt.Sprintf("%s-%s.%s", n.Name, n.EVR, n.Arch)
}

// segment classes of rpmvercmp.
const (
	segEnd = iota
	segNumeric
	segAlpha
	segTilde
	segCaret
)

func isAlnum(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isDigitB(c byte) bool { return c >= '0' && c <= '9' }
func isAlphaB(c byte) bool { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }

// Vercmp implements rpmvercmp: split both strings into alternating numeric
// and alphabetic segments (separators ignored), compare pairwise; numeric
// segments beat alphabetic ones; a tilde sorts before everything (pre-
// releases), a caret after the bare prefix but before longer versions.
func Vercmp(a, b string) int {
	i, j := 0, 0
	for {
		// Handle tilde/caret before skipping separators.
		aTilde := i < len(a) && a[i] == '~'
		bTilde := j < len(b) && b[j] == '~'
		if aTilde || bTilde {
			switch {
			case aTilde && bTilde:
				i++
				j++
				continue
			case aTilde:
				return -1
			default:
				return 1
			}
		}
		aCaret := i < len(a) && a[i] == '^'
		bCaret := j < len(b) && b[j] == '^'
		if aCaret || bCaret {
			switch {
			case aCaret && bCaret:
				i++
				j++
				continue
			case aCaret && j >= len(b):
				return 1 // "1.0^x" > "1.0"
			case aCaret:
				return -1 // "1.0^x" < "1.0.1"
			case bCaret && i >= len(a):
				return -1
			default:
				return 1
			}
		}
		// Skip non-alphanumeric separators.
		for i < len(a) && !isAlnum(a[i]) && a[i] != '~' && a[i] != '^' {
			i++
		}
		for j < len(b) && !isAlnum(b[j]) && b[j] != '~' && b[j] != '^' {
			j++
		}
		if i >= len(a) || j >= len(b) {
			switch {
			case i < len(a):
				return 1
			case j < len(b):
				return -1
			default:
				return 0
			}
		}
		// Take one segment of the same class from each side.
		var sa, sb string
		numeric := isDigitB(a[i])
		if numeric {
			si := i
			for i < len(a) && isDigitB(a[i]) {
				i++
			}
			sa = strings.TrimLeft(a[si:i], "0")
			if !isDigitB(b[j]) {
				return 1 // numeric beats alpha
			}
			sj := j
			for j < len(b) && isDigitB(b[j]) {
				j++
			}
			sb = strings.TrimLeft(b[sj:j], "0")
			if len(sa) != len(sb) {
				if len(sa) < len(sb) {
					return -1
				}
				return 1
			}
		} else {
			si := i
			for i < len(a) && isAlphaB(a[i]) {
				i++
			}
			sa = a[si:i]
			if isDigitB(b[j]) {
				return -1
			}
			sj := j
			for j < len(b) && isAlphaB(b[j]) {
				j++
			}
			sb = b[sj:j]
		}
		if c := strings.Compare(sa, sb); c != 0 {
			return c
		}
	}
}
