package rpm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVercmpKnownOrderings(t *testing.T) {
	// Each pair asserts a < b (classic rpmvercmp fixtures).
	less := [][2]string{
		{"1.0", "1.1"},
		{"1.9", "1.10"},
		{"1.0", "1.0.1"},
		{"1.0~rc1", "1.0"},
		{"1.0~rc1", "1.0~rc2"},
		{"a", "b"},
		{"1.0a", "1.0b"},
		{"alpha", "beta"},
		{"2.50", "2.050a"}, // leading zeros stripped: 50 == 050, then 'a' extends
		{"5.5p1", "5.5p10"},
		{"10a2", "10b2"},
		{"1.0", "1.0^20240101"},  // caret extends the bare version
		{"1.0^20240101", "1.01"}, // but sorts before a longer base
		{"xz", "xzp"},
	}
	for _, pair := range less {
		a, b := pair[0], pair[1]
		if c := Vercmp(a, b); c != -1 {
			t.Errorf("Vercmp(%q, %q) = %d, want -1", a, b, c)
		}
		if c := Vercmp(b, a); c != 1 {
			t.Errorf("Vercmp(%q, %q) = %d, want 1", b, a, c)
		}
	}
}

func TestVercmpEqual(t *testing.T) {
	eq := [][2]string{
		{"1.0", "1.0"},
		{"1.0", "1_0"},    // separators ignored
		{"2.50", "2.050"}, // leading zeros
		{"1.0~~", "1.0~~"},
	}
	for _, pair := range eq {
		if c := Vercmp(pair[0], pair[1]); c != 0 {
			t.Errorf("Vercmp(%q, %q) = %d, want 0", pair[0], pair[1], c)
		}
	}
}

func TestVercmpNumericBeatsAlpha(t *testing.T) {
	if Vercmp("1.0.1", "1.0a") != 1 {
		t.Error("numeric segment should beat alphabetic")
	}
	if Vercmp("1.0a", "1.0.1") != -1 {
		t.Error("alphabetic segment should lose to numeric")
	}
}

func TestParseEVR(t *testing.T) {
	e, err := ParseEVR("2:3.12.0-5.el9")
	if err != nil {
		t.Fatal(err)
	}
	if e.Epoch != 2 || e.Version != "3.12.0" || e.Release != "5.el9" {
		t.Errorf("parsed %+v", e)
	}
	if e.String() != "2:3.12.0-5.el9" {
		t.Errorf("String = %q", e.String())
	}
	e, err = ParseEVR("1.0")
	if err != nil || e.Epoch != 0 || e.Release != "" {
		t.Errorf("parsed %+v, %v", e, err)
	}
	for _, bad := range []string{"", ":1.0", "x:1.0", "-r1"} {
		if _, err := ParseEVR(bad); err == nil {
			t.Errorf("ParseEVR(%q) succeeded", bad)
		}
	}
}

func TestEVRCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1.0-1", "1.0-2", -1},
		{"1:0.5-1", "0.9-1", 1}, // epoch dominates
		{"1.0-1.el9", "1.0-1.el10", -1},
		{"3.12.0-3", "3.12.0-3", 0},
		{"1.0~rc1-1", "1.0-1", -1},
	}
	for _, c := range cases {
		ea, err := ParseEVR(c.a)
		if err != nil {
			t.Fatal(err)
		}
		eb, err := ParseEVR(c.b)
		if err != nil {
			t.Fatal(err)
		}
		if got := ea.Compare(eb); got != c.want {
			t.Errorf("Compare(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if c.want == -1 && !ea.Less(eb) {
			t.Errorf("Less(%q, %q) = false", c.a, c.b)
		}
	}
}

func TestParseNEVRA(t *testing.T) {
	n, err := ParseNEVRA("openblas-0.3.26-3.el9.x86_64")
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "openblas" || n.Version != "0.3.26" || n.Release != "3.el9" || n.Arch != "x86_64" {
		t.Errorf("parsed %+v", n)
	}
	if n.String() != "openblas-0.3.26-3.el9.x86_64" {
		t.Errorf("String = %q", n.String())
	}
	// Hyphenated names parse (last two hyphens split version/release).
	n, err = ParseNEVRA("vendor-blas-2:1.0-1.aarch64")
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "vendor-blas" || n.Epoch != 2 {
		t.Errorf("parsed %+v", n)
	}
	for _, bad := range []string{"", "noarch", "name.x86_64", "-1.0-1.x86_64"} {
		if _, err := ParseNEVRA(bad); err == nil {
			t.Errorf("ParseNEVRA(%q) succeeded", bad)
		}
	}
}

func randVer(rng *rand.Rand) string {
	parts := []string{"1", "2", "10", "0.3.26", "1.0~rc1", "5.5p1", "1.0^2024", "el9", "alpha"}
	v := parts[rng.Intn(len(parts))]
	if rng.Intn(2) == 0 {
		v += "." + parts[rng.Intn(len(parts))]
	}
	return v
}

func TestPropertyVercmpAntisymmetricReflexive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randVer(rng), randVer(rng)
		return Vercmp(a, b) == -Vercmp(b, a) && Vercmp(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPropertyVercmpTransitiveOnTriples(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vs := []string{randVer(rng), randVer(rng), randVer(rng)}
		// Bubble into order and verify pairwise consistency.
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if Vercmp(vs[j], vs[i]) < 0 {
					vs[i], vs[j] = vs[j], vs[i]
				}
			}
		}
		return Vercmp(vs[0], vs[1]) <= 0 && Vercmp(vs[1], vs[2]) <= 0 && Vercmp(vs[0], vs[2]) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
