package fleet_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"comtainer/internal/digest"
	"comtainer/internal/distrib"
	"comtainer/internal/faultinject"
	"comtainer/internal/fleet"
	"comtainer/internal/oci"
)

// chaosCycles returns the seeded cycle count: the full 100-seed sweep
// normally, a subset under -short (CI's -race chaos job runs the
// subset; the full sweep is the release gate).
func chaosCycles() int64 {
	if testing.Short() {
		return 10
	}
	return 100
}

// TestFleetChaosLeaderKillMidPush is the fleet's core durability test:
// while a client streams blobs through the proxy (with injected
// faults on the proxy-to-shard wire), the leader of a seeded shard
// group is killed outright. Every push the client saw acknowledged —
// before, during, or after the kill — must survive on the promoted
// replica and read back byte-identical through the proxy; pushes
// after the kill must keep succeeding via failover.
func TestFleetChaosLeaderKillMidPush(t *testing.T) {
	for seed := int64(1); seed <= chaosCycles(); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			p, ts, shards := startFleet(t, 2, 2)
			plan := faultinject.NewPlan(seed).
				Rate(faultinject.HTTP500, 0.02).
				Rate(faultinject.Drop, 0.02)
			p.HTTP = &http.Client{Transport: faultinject.NewTransport(http.DefaultTransport, plan)}

			rng := rand.New(rand.NewSource(seed))
			victimShard := shards[int(seed)%len(shards)]
			killAfter := 3 + rng.Intn(5) // acks before the kill

			src := oci.NewStore()
			type blob struct {
				d       digest.Digest
				content []byte
			}
			var blobs []blob
			for i := 0; i < 12; i++ {
				content := make([]byte, 128+rng.Intn(4096))
				rng.Read(content)
				d, _, err := src.Ingest(bytes.NewReader(content), "")
				if err != nil {
					t.Fatal(err)
				}
				blobs = append(blobs, blob{d: d, content: content})
			}

			var mu sync.Mutex
			acked := make(map[digest.Digest][]byte)
			c := fastClient(ts.URL)

			// The pusher streams blobs one at a time, recording each
			// acknowledged digest. Individual failures during the kill
			// window are legitimate — the client saw them fail.
			pushed := make(chan int, len(blobs))
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i, b := range blobs {
					if err := c.PushBlob(context.Background(), "chaos", src, b.d); err == nil {
						mu.Lock()
						acked[b.d] = b.content
						mu.Unlock()
					}
					pushed <- i
				}
			}()

			// Kill the victim group's current leader once enough pushes
			// are acknowledged, mid-stream.
			killed := false
			for range blobs {
				<-pushed
				mu.Lock()
				n := len(acked)
				mu.Unlock()
				if !killed && n >= killAfter {
					victim := victimShard.leaderReplica(t)
					victim.ts.CloseClientConnections()
					victim.ts.Close()
					// Membership change: the survivor stops replicating
					// to its dead peer and leads the group alone.
					for _, r := range victimShard.replicas {
						if r != victim {
							r.rep.SetFollowers()
						}
					}
					killed = true
				}
			}
			wg.Wait()
			if !killed {
				t.Fatalf("only %d pushes acknowledged; kill threshold %d never reached", len(acked), killAfter)
			}

			// Failover must keep accepting writes — including a manifest,
			// whose fan-out crosses the degraded group.
			after := buildTestImage(t, src, fmt.Sprintf("post-failover layer %d", seed))
			if err := c.PushImage(context.Background(), src, after, "chaos", "after"); err != nil {
				t.Fatalf("push after leader kill: %v", err)
			}

			// Zero acknowledged-write loss: every acked blob reads back
			// byte-identical through the proxy, and the ones owned by the
			// degraded group are durably on its surviving replica.
			ring := p.Ring()
			for d, content := range acked {
				dst := oci.NewStore()
				if err := c.FetchBlob(context.Background(), dst, "chaos", d); err != nil {
					t.Fatalf("acked blob %s unreadable after leader kill: %v", d.Short(), err)
				}
				got, err := distrib.ReadBlob(dst, d)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, content) {
					t.Fatalf("acked blob %s content changed after leader kill", d.Short())
				}
				if ring.Owner(d) == victimShard.group.Name() {
					if !victimShard.leaderReplica(t).srv.Blobs().Has(d) {
						t.Fatalf("acked blob %s missing from promoted replica", d.Short())
					}
				}
			}
			dst := oci.NewStore()
			got, err := c.PullImage(context.Background(), dst, "chaos", "after")
			if err != nil {
				t.Fatalf("pulling post-failover image: %v", err)
			}
			if got.Digest != after.Digest {
				t.Fatalf("post-failover image digest %s, want %s", got.Digest, after.Digest)
			}
		})
	}
}

// TestFleetChaosNoFalseAck kills a follower before a push: the leader
// cannot replicate, so the client must see the push fail AND the
// leader must not quietly keep the blob — an unreplicated commit that
// later short-circuited a retry would be a false acknowledgement.
func TestFleetChaosNoFalseAck(t *testing.T) {
	_, ts, shards := startFleet(t, 2)
	sh := shards[0]
	follower := sh.replicas[1]
	follower.ts.CloseClientConnections()
	follower.ts.Close()

	src := oci.NewStore()
	d, _, err := src.Ingest(bytes.NewReader([]byte("must not be acked")), "")
	if err != nil {
		t.Fatal(err)
	}
	c := fastClient(ts.URL)
	c.Retries = 1
	if err := c.PushBlob(context.Background(), "app", src, d); err == nil {
		t.Fatal("push succeeded with a dead follower; replication ack is broken")
	}
	if sh.replicas[0].srv.Blobs().Has(d) {
		t.Fatal("leader kept an unreplicated blob after failing the push")
	}
}

// TestFleetChaosProxyRestart proves the proxy holds no state that a
// restart loses: a second proxy instance over the same shard groups
// serves everything the first one ingested.
func TestFleetChaosProxyRestart(t *testing.T) {
	_, ts, shards := startFleet(t, 1, 1)
	src := oci.NewStore()
	desc := buildTestImage(t, src, manyPayloads(4)...)
	if err := fastClient(ts.URL).PushImage(context.Background(), src, desc, "app", "v1"); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	groups := make([]*fleet.ShardGroup, 0, len(shards))
	for _, sh := range shards {
		g, err := fleet.NewShardGroup(sh.group.Name(), sh.replicas[0].ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, g)
	}
	p2, err := fleet.NewProxy(groups, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(p2.Handler())
	defer ts2.Close()
	dst := oci.NewStore()
	got, err := fastClient(ts2.URL).PullImage(context.Background(), dst, "app", "v1")
	if err != nil {
		t.Fatalf("pull through restarted proxy: %v", err)
	}
	if got.Digest != desc.Digest {
		t.Fatalf("restarted-proxy pull digest %s, want %s", got.Digest, desc.Digest)
	}
}

// TestFleetWatchPromotes drives the heartbeat path: after the leader
// dies silently (no request traffic), CheckLeaders promotes the
// follower once the miss threshold is reached — not before.
func TestFleetWatchPromotes(t *testing.T) {
	p, _, shards := startFleet(t, 2)
	p.HeartbeatMisses = 2
	sh := shards[0]
	leader := sh.leaderReplica(t)
	follower := sh.replicas[1]
	leader.ts.CloseClientConnections()
	leader.ts.Close()

	p.CheckLeaders(context.Background(), 100*time.Millisecond)
	if got := sh.group.Leader(); got != leader.ts.URL {
		t.Fatalf("one missed heartbeat already promoted to %s", got)
	}
	p.CheckLeaders(context.Background(), 100*time.Millisecond)
	if got := sh.group.Leader(); got != follower.ts.URL {
		t.Fatalf("leader after two misses = %s, want promoted follower %s", got, follower.ts.URL)
	}
	// A healthy leader is left alone.
	p.CheckLeaders(context.Background(), 100*time.Millisecond)
	p.CheckLeaders(context.Background(), 100*time.Millisecond)
	if got := sh.group.Leader(); got != follower.ts.URL {
		t.Fatalf("healthy promoted leader was demoted to %s", got)
	}
}
