package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"comtainer/internal/digest"
)

// Write-log entry kinds.
const (
	KindBlob     = "blob"
	KindManifest = "manifest"
)

// LogEntry is one replicated write in commit order. Blob entries
// carry the digest; manifest entries additionally carry the reference
// they were pushed under and the media type, so a replay can re-issue
// the exact manifest PUT (the body is recovered from the blob store
// by digest).
type LogEntry struct {
	Seq       int64         `json:"seq"`
	Kind      string        `json:"kind"`
	Digest    digest.Digest `json:"digest"`
	Name      string        `json:"name,omitempty"`
	Ref       string        `json:"ref,omitempty"`
	MediaType string        `json:"mediaType,omitempty"`
}

// WriteLog is a shard's append-only replication log: every commit the
// leader acknowledges is recorded here (durably, when file-backed)
// before the followers are written, giving the shard a total order of
// acknowledged writes and the material to catch a rejoining follower
// up (Replicator.Sync replays it).
type WriteLog struct {
	mu      sync.Mutex
	f       *os.File
	entries []LogEntry
	seq     int64
}

// NewWriteLog opens (or creates) the log at path, replaying existing
// entries; an empty path keeps the log in memory only.
func NewWriteLog(path string) (*WriteLog, error) {
	l := &WriteLog{}
	if path == "" {
		return l, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: opening write log: %w", err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e LogEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// A torn final line from a crash mid-append: everything
			// before it is intact, and the entry it would have become
			// was never acknowledged. Stop replaying here.
			break
		}
		l.entries = append(l.entries, e)
		l.seq = e.Seq
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: replaying write log: %w", err)
	}
	l.f = f
	return l, nil
}

// Append assigns the next sequence number to e and records it,
// syncing to disk when file-backed: the entry is durable before the
// caller acknowledges the write it describes.
//
// entry must reach the file in sequence order
//
//comtainer:allow lockio -- the log mutex is the append serializer; an
func (l *WriteLog) Append(e LogEntry) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	if l.f != nil {
		b, err := json.Marshal(e)
		if err != nil {
			return 0, fmt.Errorf("fleet: encoding log entry: %w", err)
		}
		if _, err := l.f.Write(append(b, '\n')); err != nil {
			return 0, fmt.Errorf("fleet: appending write log: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("fleet: syncing write log: %w", err)
		}
	}
	l.entries = append(l.entries, e)
	return e.Seq, nil
}

// Entries returns the log entries with sequence numbers > since, in
// order.
func (l *WriteLog) Entries(since int64) []LogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []LogEntry
	for _, e := range l.entries {
		if e.Seq > since {
			out = append(out, e)
		}
	}
	return out
}

// LastSeq returns the sequence number of the newest entry (0 when
// empty).
func (l *WriteLog) LastSeq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Close releases the backing file, if any. The handle is detached
// under the lock and closed outside it, so a slow close never blocks
// concurrent Entries/LastSeq readers.
func (l *WriteLog) Close() error {
	l.mu.Lock()
	f := l.f
	l.f = nil
	l.mu.Unlock()
	if f == nil {
		return nil
	}
	return f.Close()
}
