// Package fleet scales the registry horizontally. A consistent-hash
// ring partitions the blob namespace across N shards; each shard is
// an ordered replica group whose leader synchronously replicates
// every commit to its followers (a write is acknowledged only once
// the followers hold it durably), so killing a leader loses no
// acknowledged write; and a stateless front-end proxy speaks the OCI
// distribution API — routing blob traffic to the owning shard,
// fanning manifest/ref operations out to every shard, and optionally
// pull-through caching hot blobs in a bounded local store.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"comtainer/internal/digest"
)

// DefaultVnodes is the virtual-node count per shard: enough points
// that load spreads within a few percent of even, cheap enough that
// ring construction stays trivial.
const DefaultVnodes = 64

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash  uint64
	shard string
}

// Ring maps blob digests to shard names by consistent hashing:
// each shard contributes vnodes points on a 64-bit circle, and a
// digest belongs to the first point at or clockwise of its own hash.
// Adding or removing one shard therefore moves only ~1/N of the
// keyspace. Immutable after construction; safe for concurrent use.
type Ring struct {
	vnodes int
	shards []string // sorted member names
	points []ringPoint
}

// NewRing builds a ring over the given shard names (order
// irrelevant — membership is canonicalized by sorting) with vnodes
// virtual nodes per shard (DefaultVnodes when <= 0).
func NewRing(shards []string, vnodes int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	sorted := append([]string(nil), shards...)
	sort.Strings(sorted)
	for i, s := range sorted {
		if s == "" {
			return nil, fmt.Errorf("fleet: empty shard name")
		}
		if i > 0 && sorted[i-1] == s {
			return nil, fmt.Errorf("fleet: duplicate shard %q", s)
		}
	}
	r := &Ring{vnodes: vnodes, shards: sorted}
	for _, s := range sorted {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(s, i), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

func pointHash(shard string, i int) uint64 {
	sum := sha256.Sum256([]byte(shard + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the shard owning blob d. A content digest is already
// uniformly distributed, so its leading 64 bits are the lookup key
// directly: routing is a pure function of content address and ring
// membership, computable by any peer holding the same encoding.
func (r *Ring) Owner(d digest.Digest) string {
	hex := d.Hex()
	if len(hex) >= 16 {
		if h, err := strconv.ParseUint(hex[:16], 16, 64); err == nil {
			return r.ownerHash(h)
		}
	}
	return r.ownerHash(keyHash(string(d)))
}

// OwnerKey returns the shard owning an arbitrary key (e.g. a
// "name:tag" reference) — used to spread non-digest lookups.
func (r *Ring) OwnerKey(key string) string { return r.ownerHash(keyHash(key)) }

func (r *Ring) ownerHash(h uint64) string {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Shards returns the sorted member names.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// Vnodes returns the virtual-node count per shard.
func (r *Ring) Vnodes() int { return r.vnodes }

// ringWire is the stable membership encoding: the sorted shard list
// plus the vnode count. Identical membership always encodes to
// identical bytes, so peers compare encodings to detect divergence.
type ringWire struct {
	Vnodes int      `json:"vnodes"`
	Shards []string `json:"shards"`
}

// Encode serializes the ring's membership canonically.
func (r *Ring) Encode() []byte {
	b, err := json.Marshal(ringWire{Vnodes: r.vnodes, Shards: r.shards})
	if err != nil {
		panic("fleet: encoding ring: " + err.Error())
	}
	return b
}

// DecodeRing reconstructs a ring from Encode output. The same
// membership bytes always produce a ring with identical routing.
func DecodeRing(b []byte) (*Ring, error) {
	var w ringWire
	if err := json.Unmarshal(b, &w); err != nil {
		return nil, fmt.Errorf("fleet: decoding ring: %w", err)
	}
	return NewRing(w.Shards, w.Vnodes)
}
