package fleet

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"comtainer/internal/digest"
)

// randomDigests returns n seeded content digests.
func randomDigests(seed int64, n int) []digest.Digest {
	rng := rand.New(rand.NewSource(seed))
	out := make([]digest.Digest, n)
	buf := make([]byte, 64)
	for i := range out {
		rng.Read(buf)
		out[i] = digest.FromBytes(buf)
	}
	return out
}

func TestRingOwnershipDeterministic(t *testing.T) {
	a, err := NewRing([]string{"s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same membership, different listing order: identical routing.
	b, err := NewRing([]string{"s3", "s1", "s2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range randomDigests(1, 500) {
		if a.Owner(d) != b.Owner(d) {
			t.Fatalf("owner of %s depends on membership listing order", d.Short())
		}
		if a.Owner(d) != a.Owner(d) {
			t.Fatalf("owner of %s not deterministic", d.Short())
		}
	}
}

func TestRingBalance(t *testing.T) {
	shards := []string{"s1", "s2", "s3"}
	r, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 9000
	for _, d := range randomDigests(2, n) {
		counts[r.Owner(d)]++
	}
	for _, s := range shards {
		share := float64(counts[s]) / n
		// 64 vnodes keeps shares within a loose band of even (1/3).
		if share < 0.15 || share > 0.55 {
			t.Fatalf("shard %s owns %.1f%% of keys; counts %v", s, 100*share, counts)
		}
	}
}

func TestRingEncodeDecodeStable(t *testing.T) {
	a, err := NewRing([]string{"s2", "s1"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"s1", "s2"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Encode()) != string(b.Encode()) {
		t.Fatalf("same membership encodes differently:\n%s\n%s", a.Encode(), b.Encode())
	}
	dec, err := DecodeRing(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Vnodes() != 32 {
		t.Fatalf("decoded vnodes = %d, want 32", dec.Vnodes())
	}
	for _, d := range randomDigests(3, 500) {
		if dec.Owner(d) != a.Owner(d) {
			t.Fatalf("decoded ring routes %s differently", d.Short())
		}
	}
}

// TestRingMembershipMove checks the consistent-hashing contract:
// adding one shard moves only the keys that the new shard now owns —
// every other key keeps its owner.
func TestRingMembershipMove(t *testing.T) {
	old, err := NewRing([]string{"s1", "s2", "s3", "s4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewRing([]string{"s1", "s2", "s3", "s4", "s5"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	moved := 0
	for _, d := range randomDigests(4, n) {
		was, now := old.Owner(d), grown.Owner(d)
		if was == now {
			continue
		}
		moved++
		if now != "s5" {
			t.Fatalf("key %s moved %s -> %s; only moves onto the new shard are allowed", d.Short(), was, now)
		}
	}
	frac := float64(moved) / n
	if frac < 0.05 || frac > 0.40 {
		t.Fatalf("adding 1 of 5 shards moved %.1f%% of keys, want roughly 20%%", 100*frac)
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	for _, shards := range [][]string{nil, {}, {""}, {"a", "a"}} {
		if _, err := NewRing(shards, 0); err == nil {
			t.Fatalf("NewRing(%q) succeeded, want error", shards)
		}
	}
}

func TestShardGroupPromotion(t *testing.T) {
	g, err := NewShardGroup("s", "r1", "r2", "r3")
	if err != nil {
		t.Fatal(err)
	}
	if g.Leader() != "r1" {
		t.Fatalf("initial leader %s, want r1", g.Leader())
	}
	if got := g.promoteFrom("r1"); got != "r2" {
		t.Fatalf("promoteFrom(r1) = %s, want r2", got)
	}
	// A second failure report against the already-replaced leader must
	// not leapfrog the healthy new one.
	if got := g.promoteFrom("r1"); got != "r2" {
		t.Fatalf("stale promoteFrom(r1) moved leadership to %s", got)
	}
	if got := g.promoteFrom("r2"); got != "r3" {
		t.Fatalf("promoteFrom(r2) = %s, want r3", got)
	}
	if got := g.Promote(); got != "r1" {
		t.Fatalf("forced Promote wrapped to %s, want r1", got)
	}
}

func TestShardGroupHeartbeatCounters(t *testing.T) {
	g, err := NewShardGroup("s", "r1", "r2")
	if err != nil {
		t.Fatal(err)
	}
	if n := g.noteMiss("r1"); n != 1 {
		t.Fatalf("first miss count %d, want 1", n)
	}
	g.noteBeat("r1")
	if n := g.noteMiss("r1"); n != 1 {
		t.Fatalf("miss count after beat %d, want 1 (reset)", n)
	}
	// Misses against a no-longer-leader don't count.
	g.promoteFrom("r1")
	if n := g.noteMiss("r1"); n != 0 {
		t.Fatalf("stale miss counted: %d", n)
	}
}

func TestWriteLogPersistsAndReplays(t *testing.T) {
	path := t.TempDir() + "/replication.log"
	l, err := NewWriteLog(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []LogEntry
	for i := 0; i < 5; i++ {
		e := LogEntry{Kind: KindBlob, Digest: digest.FromBytes([]byte(fmt.Sprintf("blob-%d", i)))}
		if _, err := l.Append(e); err != nil {
			t.Fatal(err)
		}
		e.Seq = int64(i + 1)
		want = append(want, e)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := NewWriteLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Entries(0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if tail := re.Entries(3); len(tail) != 2 || tail[0].Seq != 4 {
		t.Fatalf("Entries(3) = %+v, want seqs 4,5", tail)
	}
	// Appends continue the sequence after replay.
	seq, err := re.Append(LogEntry{Kind: KindBlob, Digest: digest.FromBytes([]byte("later"))})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("post-replay Append assigned seq %d, want 6", seq)
	}
}

func TestWriteLogToleratesTornTail(t *testing.T) {
	path := t.TempDir() + "/replication.log"
	l, err := NewWriteLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(LogEntry{Kind: KindBlob, Digest: digest.FromBytes([]byte("ok"))}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, non-JSON final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"kind":"bl`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := NewWriteLog(path)
	if err != nil {
		t.Fatalf("reopening torn log: %v", err)
	}
	defer re.Close()
	if got := re.Entries(0); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("torn log replayed %+v, want just seq 1", got)
	}
	if re.LastSeq() != 1 {
		t.Fatalf("LastSeq = %d, want 1", re.LastSeq())
	}
}
