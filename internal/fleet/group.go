package fleet

import (
	"fmt"
	"sync"
)

// ShardGroup is one shard of the ring: an ordered replica set (base
// URLs) whose current leader serves the shard's traffic. Because a
// leader acknowledges a write only after every follower holds it
// durably, promotion is trivial — advance to the next replica; no
// acknowledged state can be lost. The proxy promotes on request
// failure (deterministic, immediate) and on heartbeat loss (Watch).
type ShardGroup struct {
	name string

	mu       sync.Mutex
	replicas []string
	leader   int
	misses   int // consecutive failed heartbeats of the current leader
}

// NewShardGroup returns a group named name over the given replicas;
// the first listed replica starts as leader.
func NewShardGroup(name string, replicas ...string) (*ShardGroup, error) {
	if name == "" {
		return nil, fmt.Errorf("fleet: shard group needs a name")
	}
	if len(replicas) == 0 {
		return nil, fmt.Errorf("fleet: shard group %s needs at least one replica", name)
	}
	return &ShardGroup{name: name, replicas: append([]string(nil), replicas...)}, nil
}

// Name returns the group's ring member name.
func (g *ShardGroup) Name() string { return g.name }

// Leader returns the current leader's base URL.
func (g *ShardGroup) Leader() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.replicas[g.leader]
}

// Replicas returns the replica base URLs in configured order.
func (g *ShardGroup) Replicas() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.replicas...)
}

// promoteFrom advances leadership past stale — but only if stale is
// still the leader, so concurrent failures against the same dead
// leader promote exactly once instead of leapfrogging healthy
// replicas. Returns the (possibly unchanged) current leader.
func (g *ShardGroup) promoteFrom(stale string) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.replicas[g.leader] == stale && len(g.replicas) > 1 {
		g.leader = (g.leader + 1) % len(g.replicas)
		g.misses = 0
	}
	return g.replicas[g.leader]
}

// Promote forces leadership to the next replica (operator action).
func (g *ShardGroup) Promote() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.replicas) > 1 {
		g.leader = (g.leader + 1) % len(g.replicas)
		g.misses = 0
	}
	return g.replicas[g.leader]
}

// noteMiss records one failed heartbeat against leader and returns
// the consecutive-miss count (reset when leadership moved meanwhile).
func (g *ShardGroup) noteMiss(leader string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.replicas[g.leader] != leader {
		return 0
	}
	g.misses++
	return g.misses
}

// noteBeat clears the consecutive-miss counter for leader.
func (g *ShardGroup) noteBeat(leader string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.replicas[g.leader] == leader {
		g.misses = 0
	}
}
