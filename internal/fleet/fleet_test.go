// Functional tests of the registry fleet: sharded push/pull through
// the proxy, synchronous replication, the pull-through cache, read
// redirects, the fleet-aware client resolver, and GC racing pushes.
// External test package so the fleet is driven through the same
// distrib client the CLI uses.
package fleet_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"comtainer/internal/digest"
	"comtainer/internal/distrib"
	"comtainer/internal/fleet"
	"comtainer/internal/fsim"
	"comtainer/internal/oci"
	"comtainer/internal/registry"
)

// testReplica is one storage registry participating in a shard group.
type testReplica struct {
	srv *registry.Server
	rep *fleet.Replicator
	ts  *httptest.Server
}

// testShard is a replica group plus its routing handle.
type testShard struct {
	group    *fleet.ShardGroup
	replicas []*testReplica
}

// leaderReplica returns the replica currently leading the group.
func (sh *testShard) leaderReplica(t *testing.T) *testReplica {
	t.Helper()
	lead := sh.group.Leader()
	for _, r := range sh.replicas {
		if r.ts.URL == lead {
			return r
		}
	}
	t.Fatalf("no replica serves leader URL %s", lead)
	return nil
}

// startShard launches n fleet-member registries wired as one replica
// group: every replica runs a symmetric replicator listing its peers,
// so whichever replica leads acknowledges a write only after the
// others hold it durably.
func startShard(t *testing.T, n int) *testShard {
	t.Helper()
	sh := &testShard{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := registry.NewServer()
		srv.TrustReferences = true
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		sh.replicas = append(sh.replicas, &testReplica{srv: srv, ts: ts})
		urls[i] = ts.URL
	}
	for i, r := range sh.replicas {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		r.rep = fleet.NewReplicator(r.srv.Blobs(), nil, peers...)
		r.srv.SetCommitHook(r.rep)
	}
	g, err := fleet.NewShardGroup(urls[0], urls...)
	if err != nil {
		t.Fatal(err)
	}
	sh.group = g
	return sh
}

// startFleet builds a proxy over shard groups of the given replica
// counts and serves it.
func startFleet(t *testing.T, replicaCounts ...int) (*fleet.Proxy, *httptest.Server, []*testShard) {
	t.Helper()
	var shards []*testShard
	var groups []*fleet.ShardGroup
	for _, n := range replicaCounts {
		sh := startShard(t, n)
		shards = append(shards, sh)
		groups = append(groups, sh.group)
	}
	p, err := fleet.NewProxy(groups, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p.Handler())
	t.Cleanup(ts.Close)
	return p, ts, shards
}

// fastClient returns a distrib client with short retry backoff.
func fastClient(base string) *distrib.Client {
	c := distrib.NewClient(base)
	c.RetryBackoff = time.Millisecond
	return c
}

// buildTestImage writes an image with the given layer payloads.
func buildTestImage(t *testing.T, s *oci.Store, payloads ...string) oci.Descriptor {
	t.Helper()
	var layers []*fsim.FS
	for i, p := range payloads {
		l := fsim.New()
		l.WriteFile(fmt.Sprintf("/data/l%d", i), []byte(p), 0o644)
		layers = append(layers, l)
	}
	desc, err := oci.WriteImage(s, oci.ImageConfig{Architecture: "amd64", OS: "linux"}, layers)
	if err != nil {
		t.Fatal(err)
	}
	return desc
}

// manyPayloads returns n distinct layer payloads.
func manyPayloads(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("layer payload %d with some bulk to shard around", i)
	}
	return out
}

// TestFleetPushPullSharded pushes an image through the proxy and
// checks the blobs land on their ring-assigned shards, the manifest
// and tag fan out to every shard, and a pull through the proxy
// reassembles the image bit-for-bit.
func TestFleetPushPullSharded(t *testing.T) {
	p, ts, shards := startFleet(t, 1, 1, 1)
	src := oci.NewStore()
	desc := buildTestImage(t, src, manyPayloads(8)...)
	c := fastClient(ts.URL)
	if err := c.PushImage(context.Background(), src, desc, "team/app", "v1"); err != nil {
		t.Fatal(err)
	}

	byName := make(map[string]*testShard)
	for _, sh := range shards {
		byName[sh.group.Name()] = sh
	}
	populated := 0
	for _, sh := range shards {
		if len(sh.replicas[0].srv.Blobs().Digests()) > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("blobs landed on %d shard(s); expected the ring to spread them", populated)
	}
	for _, d := range src.Digests() {
		owner := byName[p.Ring().Owner(d)]
		if !owner.replicas[0].srv.Blobs().Has(d) {
			t.Fatalf("blob %s missing from its owning shard %s", d.Short(), p.Ring().Owner(d))
		}
	}
	// Manifests and tags fan out to every shard: each can anchor its
	// own GC roots and resolve the tag.
	for i, sh := range shards {
		if !sh.replicas[0].srv.Blobs().Has(desc.Digest) {
			t.Fatalf("shard %d lacks the fanned-out manifest", i)
		}
		tags, err := fastClient(sh.replicas[0].ts.URL).ListTags(context.Background(), "team/app")
		if err != nil || len(tags) != 1 || tags[0] != "v1" {
			t.Fatalf("shard %d tags = %v, %v; want [v1]", i, tags, err)
		}
	}

	tags, err := c.ListTags(context.Background(), "team/app")
	if err != nil || len(tags) != 1 || tags[0] != "v1" {
		t.Fatalf("proxy tags = %v, %v; want [v1]", tags, err)
	}
	dst := oci.NewStore()
	got, err := c.PullImage(context.Background(), dst, "team/app", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != desc.Digest {
		t.Fatalf("pulled digest %s, want %s", got.Digest, desc.Digest)
	}
}

// TestFleetReplicationAck checks the durability contract: once the
// proxy acknowledges a push, every replica of the owning shard holds
// every blob, and the leader's write log recorded the commits.
func TestFleetReplicationAck(t *testing.T) {
	_, ts, shards := startFleet(t, 2)
	src := oci.NewStore()
	desc := buildTestImage(t, src, manyPayloads(4)...)
	if err := fastClient(ts.URL).PushImage(context.Background(), src, desc, "app", "v1"); err != nil {
		t.Fatal(err)
	}
	sh := shards[0]
	for _, d := range src.Digests() {
		for i, r := range sh.replicas {
			if !r.srv.Blobs().Has(d) {
				t.Fatalf("replica %d missing blob %s after acknowledged push", i, d.Short())
			}
		}
	}
	if seq := sh.leaderReplica(t).rep.Log().LastSeq(); seq == 0 {
		t.Fatal("leader write log is empty after acknowledged pushes")
	}
}

// TestFleetPullThroughCache pulls the same image twice: the second
// pull must be served from the proxy's cache without touching the
// shards' blob endpoints.
func TestFleetPullThroughCache(t *testing.T) {
	p, ts, shards := startFleet(t, 1)
	if err := p.SetCache(oci.NewStore(), 0); err != nil {
		t.Fatal(err)
	}
	src := oci.NewStore()
	desc := buildTestImage(t, src, manyPayloads(3)...)
	c := fastClient(ts.URL)
	if err := c.PushImage(context.Background(), src, desc, "app", "v1"); err != nil {
		t.Fatal(err)
	}
	// The push itself warms the cache, so even the first pull should
	// avoid the shard.
	counter := &blobGetCounter{}
	shards[0].replicas[0].ts.Config.Handler = counter.wrap(shards[0].replicas[0].srv.Handler())

	for i := 0; i < 2; i++ {
		dst := oci.NewStore()
		got, err := c.PullImage(context.Background(), dst, "app", "v1")
		if err != nil {
			t.Fatal(err)
		}
		if got.Digest != desc.Digest {
			t.Fatalf("pull %d digest %s, want %s", i, got.Digest, desc.Digest)
		}
	}
	if n := counter.gets.Load(); n != 0 {
		t.Fatalf("cached pulls still issued %d blob GETs to the shard", n)
	}
	if hits, _ := p.CacheStats(); hits == 0 {
		t.Fatal("cache recorded no hits across two pulls")
	}
}

type blobGetCounter struct{ gets atomic.Int64 }

func (c *blobGetCounter) wrap(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && containsBlobPath(r.URL.Path) {
			c.gets.Add(1)
		}
		inner.ServeHTTP(w, r)
	})
}

func containsBlobPath(p string) bool {
	return strings.Contains(p, "/blobs/") && !strings.Contains(p, "/uploads")
}

// TestFleetCacheBounded pushes more data than the cache capacity and
// checks eviction keeps the cache within bounds while the fleet stays
// authoritative for everything.
func TestFleetCacheBounded(t *testing.T) {
	p, ts, _ := startFleet(t, 1)
	cache := oci.NewStore()
	const capBytes = 3 * 1024
	if err := p.SetCache(cache, capBytes); err != nil {
		t.Fatal(err)
	}
	src := oci.NewStore()
	var digests []digest.Digest
	for i := 0; i < 6; i++ {
		payload := make([]byte, 1024)
		for j := range payload {
			payload[j] = byte(i)
		}
		d, _, err := src.Ingest(bytes.NewReader(payload), "")
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	c := fastClient(ts.URL)
	for _, d := range digests {
		if err := c.PushBlob(context.Background(), "app", src, d); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for _, d := range cache.Digests() {
		rc, size, err := cache.Open(d)
		if err != nil {
			t.Fatal(err)
		}
		rc.Close()
		total += size
	}
	if total > capBytes {
		t.Fatalf("cache holds %d bytes, capacity %d", total, capBytes)
	}
	// Evicted blobs are still served (pull-through from the shard).
	for _, d := range digests {
		dst := oci.NewStore()
		if err := c.FetchBlob(context.Background(), dst, "app", d); err != nil {
			t.Fatalf("fetching %s after eviction: %v", d.Short(), err)
		}
	}
}

// TestFleetRedirectReads checks -redirect-reads: an uncached blob GET
// answers with a 307 pointing at the owning shard's leader, and a
// redirect-following client still gets the bytes.
func TestFleetRedirectReads(t *testing.T) {
	p, ts, shards := startFleet(t, 1)
	p.RedirectReads = true
	src := oci.NewStore()
	desc := buildTestImage(t, src, "one layer")
	c := fastClient(ts.URL)
	if err := c.PushImage(context.Background(), src, desc, "app", "v1"); err != nil {
		t.Fatal(err)
	}

	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	for _, d := range src.Digests() {
		resp, err := noFollow.Get(ts.URL + "/v2/app/blobs/" + string(d))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTemporaryRedirect {
			t.Fatalf("blob GET status %d, want 307", resp.StatusCode)
		}
		want := shards[0].group.Leader() + "/v2/app/blobs/" + string(d)
		if loc := resp.Header.Get("Location"); loc != want {
			t.Fatalf("redirect location %s, want %s", loc, want)
		}
	}
	dst := oci.NewStore()
	got, err := c.PullImage(context.Background(), dst, "app", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != desc.Digest {
		t.Fatalf("redirected pull digest %s, want %s", got.Digest, desc.Digest)
	}
}

// TestFleetTableResolver fetches the routing table and runs a
// fleet-aware client against it: blob traffic goes straight to the
// owning shards while only manifest and tag operations touch the
// proxy.
func TestFleetTableResolver(t *testing.T) {
	p, ts, shards := startFleet(t, 1, 1, 1)
	table, err := fleet.FetchTable(context.Background(), nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resolve, err := table.Resolver()
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]*testShard)
	for _, sh := range shards {
		byName[sh.group.Name()] = sh
	}

	proxyBlobs := &blobTrafficCounter{}
	ts.Config.Handler = proxyBlobs.wrap(p.Handler())

	c := fastClient(ts.URL)
	c.Resolver = resolve
	src := oci.NewStore()
	desc := buildTestImage(t, src, manyPayloads(5)...)
	if err := c.PushImage(context.Background(), src, desc, "app", "v1"); err != nil {
		t.Fatal(err)
	}
	dst := oci.NewStore()
	got, err := c.PullImage(context.Background(), dst, "app", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != desc.Digest {
		t.Fatalf("resolver pull digest %s, want %s", got.Digest, desc.Digest)
	}
	for _, d := range src.Digests() {
		base, ok := resolve(d)
		if !ok {
			t.Fatalf("resolver has no endpoint for %s", d.Short())
		}
		if want := byName[p.Ring().Owner(d)].group.Leader(); base != want {
			t.Fatalf("resolver sends %s to %s, ring owner's leader is %s", d.Short(), base, want)
		}
	}
	if n := proxyBlobs.ops.Load(); n != 0 {
		t.Fatalf("fleet-aware client still sent %d blob operations through the proxy", n)
	}
}

type blobTrafficCounter struct{ ops atomic.Int64 }

func (c *blobTrafficCounter) wrap(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "/blobs/") {
			c.ops.Add(1)
		}
		inner.ServeHTTP(w, r)
	})
}

// TestGCRacesConcurrentPushThroughProxy hammers every shard with GC
// while images are pushed through the proxy. The commit-grace pin
// must keep blobs alive between their shard commit and the manifest
// fan-out that makes them referenced, so every push that succeeded
// pulls back intact.
func TestGCRacesConcurrentPushThroughProxy(t *testing.T) {
	_, ts, shards := startFleet(t, 1, 1)
	c := fastClient(ts.URL)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, sh := range shards {
				if _, err := sh.replicas[0].srv.GC(); err != nil {
					t.Errorf("gc: %v", err)
					return
				}
			}
			time.Sleep(time.Millisecond) // yield so pushes interleave with sweeps
		}
	}()

	const images = 8
	descs := make([]oci.Descriptor, images)
	src := oci.NewStore()
	for i := 0; i < images; i++ {
		descs[i] = buildTestImage(t, src, fmt.Sprintf("racing layer %d", i), fmt.Sprintf("second racing layer %d", i))
		if err := c.PushImage(context.Background(), src, descs[i], "app", fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("push v%d during gc race: %v", i, err)
		}
	}
	close(done)
	wg.Wait()

	// One more sweep each with everything referenced, then verify.
	for _, sh := range shards {
		if _, err := sh.replicas[0].srv.GC(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < images; i++ {
		dst := oci.NewStore()
		got, err := c.PullImage(context.Background(), dst, "app", fmt.Sprintf("v%d", i))
		if err != nil {
			t.Fatalf("pulling v%d after gc race: %v", i, err)
		}
		if got.Digest != descs[i].Digest {
			t.Fatalf("v%d digest %s, want %s", i, got.Digest, descs[i].Digest)
		}
	}
}
