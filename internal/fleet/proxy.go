package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"comtainer/internal/core/ctxutil"
	"comtainer/internal/digest"
	"comtainer/internal/distrib"
	"comtainer/internal/oci"
	"comtainer/internal/registry"
)

// TablePath is where the proxy serves its routing table.
const TablePath = "/fleet/v1/table"

// maxManifestSize bounds manifest documents on the fan-out path.
const maxManifestSize = 16 << 20

// maxBlobSize bounds a single proxied blob upload.
const maxBlobSize = int64(1) << 30

// DefaultHeartbeatMisses is how many consecutive failed leader pings
// Watch tolerates before promoting a follower.
const DefaultHeartbeatMisses = 2

// Proxy is the stateless fleet front-end: it speaks the OCI
// distribution API, routes every blob operation to the shard group
// owning the digest (with failover promotion when a leader dies
// mid-request), fans manifest and tag operations out to every shard,
// and optionally pull-through caches blobs in a bounded local store.
// Holding no state a restart can lose — upload sessions aside, which
// clients simply restart — any number of proxies can front the same
// shard fleet.
type Proxy struct {
	// HTTP carries proxy-to-shard traffic (defaults to
	// http.DefaultClient); tests inject fault transports here.
	HTTP *http.Client
	// FarmBackend, when set, is a scheduler base URL that /farm/v1
	// requests are forwarded to, so build-farm workers and executors
	// point their single endpoint at the proxy and get routed blob
	// traffic for free.
	FarmBackend string
	// RedirectReads answers uncached blob GETs with a 307 to the
	// owning shard leader instead of streaming through the proxy,
	// taking the proxy out of the read data path entirely.
	RedirectReads bool
	// HeartbeatMisses overrides DefaultHeartbeatMisses when > 0.
	HeartbeatMisses int

	ring    *Ring
	groups  map[string]*ShardGroup
	order   []string // sorted group names
	uploads *distrib.UploadManager

	cacheMu    sync.Mutex
	cache      distrib.Store
	cacheCap   int64
	cacheTotal int64
	cacheOrder []digest.Digest // LRU: oldest first
	cacheSize  map[digest.Digest]int64

	clientMu sync.Mutex
	clients  map[string]*distrib.Client

	cacheHits, cacheMisses atomic.Int64
}

// NewProxy returns a proxy over the given shard groups, building the
// ring from their names with vnodes virtual nodes per shard
// (DefaultVnodes when <= 0).
func NewProxy(groups []*ShardGroup, vnodes int) (*Proxy, error) {
	names := make([]string, 0, len(groups))
	byName := make(map[string]*ShardGroup, len(groups))
	for _, g := range groups {
		if _, dup := byName[g.Name()]; dup {
			return nil, fmt.Errorf("fleet: duplicate shard group %q", g.Name())
		}
		names = append(names, g.Name())
		byName[g.Name()] = g
	}
	ring, err := NewRing(names, vnodes)
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return &Proxy{
		ring:    ring,
		groups:  byName,
		order:   names,
		uploads: distrib.NewUploadManager(""),
	}, nil
}

// Ring exposes the proxy's routing ring.
func (p *Proxy) Ring() *Ring { return p.ring }

// SetCache mounts a bounded pull-through cache: blobs fetched from
// shards are kept in store and evicted least-recently-used once the
// total exceeds capBytes (0 = unbounded). Existing store content is
// adopted into the accounting, so a disk-backed cache survives proxy
// restarts.
func (p *Proxy) SetCache(store distrib.Store, capBytes int64) error {
	// Size the existing contents before taking the lock: adoption is
	// disk I/O and must not run inside the critical section.
	var order []digest.Digest
	sizes := make(map[digest.Digest]int64)
	var total int64
	if store != nil {
		for _, d := range store.Digests() {
			rc, size, err := store.Open(d)
			if err != nil {
				return fmt.Errorf("fleet: adopting cache blob %s: %w", d.Short(), err)
			}
			rc.Close()
			order = append(order, d)
			sizes[d] = size
			total += size
		}
	}
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	p.cache = store
	p.cacheCap = capBytes
	p.cacheTotal = total
	p.cacheOrder = order
	p.cacheSize = sizes
	if store != nil {
		p.evictLocked()
	}
	return nil
}

// CacheStats returns pull-through cache hit/miss counters.
func (p *Proxy) CacheStats() (hits, misses int64) {
	return p.cacheHits.Load(), p.cacheMisses.Load()
}

// cacheHas reports (and LRU-touches) a cached blob.
func (p *Proxy) cacheHas(d digest.Digest) bool {
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	if p.cache == nil || !p.cache.Has(d) {
		return false
	}
	for i, o := range p.cacheOrder {
		if o == d {
			p.cacheOrder = append(append(p.cacheOrder[:i:i], p.cacheOrder[i+1:]...), d)
			break
		}
	}
	return true
}

// cacheAdd copies blob d from src into the cache, evicting LRU
// entries beyond capacity. Best-effort: a cache failure never fails
// the request that triggered it. The copy runs outside the lock —
// ingestion is content-addressed, so a concurrent add of the same
// digest is harmless and noteFetched deduplicates the accounting.
func (p *Proxy) cacheAdd(src distrib.BlobSource, d digest.Digest) {
	store := p.cacheStore()
	if store == nil || store.Has(d) {
		return
	}
	rc, _, err := src.Open(d)
	if err != nil {
		return
	}
	_, _, err = store.Ingest(rc, d)
	rc.Close()
	if err != nil {
		return
	}
	p.noteFetched(d)
}

// evictLocked drops least-recently-used entries until the cache fits
// its capacity. Callers hold cacheMu.
func (p *Proxy) evictLocked() {
	if p.cacheCap <= 0 {
		return
	}
	for p.cacheTotal > p.cacheCap && len(p.cacheOrder) > 0 {
		victim := p.cacheOrder[0]
		p.cacheOrder = p.cacheOrder[1:]
		if err := p.cache.Delete(victim); err != nil {
			return
		}
		p.cacheTotal -= p.cacheSize[victim]
		delete(p.cacheSize, victim)
	}
}

// groupFor returns the shard group owning blob d.
func (p *Proxy) groupFor(d digest.Digest) *ShardGroup {
	return p.groups[p.ring.Owner(d)]
}

// groupsFrom returns every group, starting at the owner of key —
// the deterministic primary for fanned-out resources (manifests,
// tags), with the rest as fallbacks.
func (p *Proxy) groupsFrom(key string) []*ShardGroup {
	owner := p.ring.OwnerKey(key)
	out := make([]*ShardGroup, 0, len(p.order))
	out = append(out, p.groups[owner])
	for _, n := range p.order {
		if n != owner {
			out = append(out, p.groups[n])
		}
	}
	return out
}

func (p *Proxy) httpClient() *http.Client {
	if p.HTTP != nil {
		return p.HTTP
	}
	return http.DefaultClient
}

// clientFor returns a (cached) distrib client for one replica. Low
// retry budget: failover to the next replica beats retrying a dead
// one.
func (p *Proxy) clientFor(base string) *distrib.Client {
	p.clientMu.Lock()
	defer p.clientMu.Unlock()
	if c, ok := p.clients[base]; ok {
		return c
	}
	c := distrib.NewClient(base)
	c.HTTP = p.httpClient()
	c.Retries = 1
	if p.clients == nil {
		p.clients = make(map[string]*distrib.Client)
	}
	p.clients[base] = c
	return c
}

// withGroup runs fn against the group's current leader, promoting
// the next replica and retrying on failure until every replica has
// been tried once. fn must be idempotent (all fleet writes are:
// content-addressed blobs and same-bytes manifest PUTs).
func (p *Proxy) withGroup(g *ShardGroup, fn func(base string) error) error {
	leader := g.Leader()
	var err error
	for range g.Replicas() {
		err = fn(leader)
		if err == nil || distrib.IsNotFound(err) {
			return err
		}
		leader = g.promoteFrom(leader)
	}
	return fmt.Errorf("fleet: shard %s has no usable replica: %w", g.Name(), err)
}

// Handler returns the proxy's HTTP surface: the /v2/ distribution
// API, the routing table, and (when configured) the forwarded farm
// control plane.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v2/", p.route)
	mux.HandleFunc(TablePath, p.serveTable)
	if p.FarmBackend != "" {
		mux.HandleFunc("/farm/", p.forwardFarm)
	}
	return mux
}

// route dispatches /v2/<name>/(manifests|blobs|blobs/uploads)/<ref>,
// mirroring the registry's router so existing clients work unchanged.
func (p *Proxy) route(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v2/")
	if rest == "" {
		w.WriteHeader(http.StatusOK)
		return
	}
	if strings.HasSuffix(rest, "/tags/list") && r.Method == http.MethodGet {
		p.listTags(w, r, strings.TrimSuffix(rest, "/tags/list"))
		return
	}
	var name, kind, ref string
	for _, k := range []string{"/manifests/", "/blobs/"} {
		if i := strings.LastIndex(rest, k); i >= 0 {
			name, kind, ref = rest[:i], strings.Trim(k, "/"), rest[i+len(k):]
			break
		}
	}
	if name == "" || (ref == "" && !strings.HasSuffix(rest, "/blobs/uploads/")) {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	if kind == "manifests" {
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			p.getManifest(w, r, name, ref)
		case http.MethodPut:
			p.putManifest(w, r, name, ref)
		default:
			http.Error(w, "unsupported operation", http.StatusMethodNotAllowed)
		}
		return
	}
	if id, ok := strings.CutPrefix(ref, "uploads"); ok {
		id = strings.TrimPrefix(id, "/")
		p.routeUpload(w, r, name, id)
		return
	}
	switch r.Method {
	case http.MethodGet:
		p.getBlob(w, r, name, ref)
	case http.MethodHead:
		p.headBlob(w, r, name, ref)
	default:
		http.Error(w, "unsupported operation", http.StatusMethodNotAllowed)
	}
}

// --- blob reads ---

func (p *Proxy) getBlob(w http.ResponseWriter, r *http.Request, name, ref string) {
	d, err := digest.Parse(ref)
	if err != nil {
		http.Error(w, "invalid digest", http.StatusBadRequest)
		return
	}
	g := p.groupFor(d)
	if p.cacheHas(d) {
		p.cacheHits.Add(1)
		registry.ServeBlob(w, r, p.cacheStore(), d)
		return
	}
	p.cacheMisses.Add(1)
	if p.RedirectReads {
		http.Redirect(w, r, g.Leader()+"/v2/"+name+"/blobs/"+string(d), http.StatusTemporaryRedirect)
		return
	}
	if p.cacheStore() != nil {
		// Pull-through: fetch into the cache (verified), serve from it.
		staging := p.cacheStore()
		err := p.withGroup(g, func(base string) error {
			return p.clientFor(base).FetchBlob(r.Context(), staging, name, d)
		})
		if err != nil {
			p.proxyError(w, err)
			return
		}
		p.noteFetched(d)
		registry.ServeBlob(w, r, staging, d)
		return
	}
	p.forwardBlob(w, r, g, "/v2/"+name+"/blobs/"+string(d))
}

// cacheStore returns the mounted cache store (nil when none).
func (p *Proxy) cacheStore() distrib.Store {
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	return p.cache
}

// noteFetched records a blob ingested directly into the cache store
// (by FetchBlob or cacheAdd), folding it into the LRU accounting. The
// size probe happens before the lock; a blob another goroutine already
// accounted for (or evicted meanwhile) is skipped by the known-check.
func (p *Proxy) noteFetched(d digest.Digest) {
	store := p.cacheStore()
	if store == nil {
		return
	}
	rc, size, err := store.Open(d)
	if err != nil {
		return
	}
	rc.Close()
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	if p.cache == nil {
		return
	}
	if _, known := p.cacheSize[d]; known {
		return
	}
	p.cacheOrder = append(p.cacheOrder, d)
	p.cacheSize[d] = size
	p.cacheTotal += size
	p.evictLocked()
}

func (p *Proxy) headBlob(w http.ResponseWriter, r *http.Request, name, ref string) {
	d, err := digest.Parse(ref)
	if err != nil {
		http.Error(w, "invalid digest", http.StatusBadRequest)
		return
	}
	if p.cacheHas(d) {
		store := p.cacheStore()
		rc, size, err := store.Open(d)
		if err == nil {
			rc.Close()
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Docker-Content-Digest", string(d))
			w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
			w.WriteHeader(http.StatusOK)
			return
		}
	}
	p.forwardBlob(w, r, p.groupFor(d), "/v2/"+name+"/blobs/"+string(d))
}

// forwardBlob relays a blob GET/HEAD to the owning group with
// failover, streaming the response through.
func (p *Proxy) forwardBlob(w http.ResponseWriter, r *http.Request, g *ShardGroup, path string) {
	err := p.withGroup(g, func(base string) error {
		req, err := http.NewRequestWithContext(r.Context(), r.Method, base+path, nil)
		if err != nil {
			return err
		}
		if rng := r.Header.Get("Range"); rng != "" {
			req.Header.Set("Range", rng)
		}
		resp, err := p.httpClient().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 500 {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return fmt.Errorf("fleet: %s %s: status %s: %s", r.Method, base+path, resp.Status, strings.TrimSpace(string(msg)))
		}
		relayResponse(w, resp)
		return nil
	})
	if err != nil {
		p.proxyError(w, err)
	}
}

// relayResponse copies a shard response (status, distribution
// headers, body) to the client verbatim.
func relayResponse(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{
		"Content-Type", "Content-Length", "Content-Range",
		"Docker-Content-Digest", "Accept-Ranges", "Location",
		"Docker-Upload-UUID", "Range",
	} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// proxyError maps a routed-request failure onto the client response:
// a definitive 404 from the shard passes through, everything else is
// a 502 the client's retry logic treats as transient.
func (p *Proxy) proxyError(w http.ResponseWriter, err error) {
	if distrib.IsNotFound(err) {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	http.Error(w, err.Error(), http.StatusBadGateway)
}

// --- blob uploads ---

// routeUpload implements the upload-session protocol proxy-side: the
// session accumulates locally, and the finalizing PUT pushes the
// complete verified blob to the owning shard — the client's 201 is
// issued only after the shard leader (and, through its replication
// hook, every follower) has acknowledged durably.
func (p *Proxy) routeUpload(w http.ResponseWriter, r *http.Request, name, id string) {
	if id == "" {
		switch {
		case r.Method == http.MethodPost && r.URL.Query().Get("digest") == "":
			u, err := p.uploads.Start(name)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Location", "/v2/"+name+"/blobs/uploads/"+u.ID)
			w.Header().Set("Docker-Upload-UUID", u.ID)
			w.Header().Set("Range", "0-0")
			w.WriteHeader(http.StatusAccepted)
		case r.URL.Query().Get("digest") != "":
			p.putBlobMonolithic(w, r, name)
		default:
			http.Error(w, "unsupported operation", http.StatusMethodNotAllowed)
		}
		return
	}
	u, ok := p.uploads.Get(id)
	if !ok {
		http.Error(w, "upload unknown", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodPatch:
		expectStart := int64(-1)
		if cr := r.Header.Get("Content-Range"); cr != "" {
			start, _, ok := strings.Cut(strings.TrimPrefix(cr, "bytes "), "-")
			n, err := strconv.ParseInt(start, 10, 64)
			if !ok || err != nil || n < 0 {
				http.Error(w, "malformed Content-Range", http.StatusBadRequest)
				return
			}
			expectStart = n
		}
		size, err := u.Append(r.Body, expectStart)
		w.Header().Set("Docker-Upload-UUID", u.ID)
		w.Header().Set("Range", uploadRange(size))
		if err != nil {
			http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	case http.MethodPut:
		if r.ContentLength != 0 {
			if _, err := u.Append(r.Body, -1); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		want, err := digest.Parse(r.URL.Query().Get("digest"))
		if err != nil {
			http.Error(w, "invalid digest", http.StatusBadRequest)
			return
		}
		staging := oci.NewStore()
		d, _, err := p.uploads.Commit(u, staging, want)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := p.pushToShard(r.Context(), staging, name, d); err != nil {
			p.proxyError(w, err)
			return
		}
		w.Header().Set("Location", "/v2/"+name+"/blobs/"+string(d))
		w.Header().Set("Docker-Content-Digest", string(d))
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet:
		w.Header().Set("Docker-Upload-UUID", u.ID)
		w.Header().Set("Range", uploadRange(u.Size()))
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		p.uploads.Cancel(u)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "unsupported operation", http.StatusMethodNotAllowed)
	}
}

// uploadRange renders the session Range header ("0-0" when empty).
func uploadRange(size int64) string {
	if size <= 0 {
		return "0-0"
	}
	return fmt.Sprintf("0-%d", size-1)
}

func (p *Proxy) putBlobMonolithic(w http.ResponseWriter, r *http.Request, name string) {
	want, err := digest.Parse(r.URL.Query().Get("digest"))
	if err != nil {
		http.Error(w, "invalid digest", http.StatusBadRequest)
		return
	}
	staging := oci.NewStore()
	d, _, err := staging.Ingest(io.LimitReader(r.Body, maxBlobSize), want)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := p.pushToShard(r.Context(), staging, name, d); err != nil {
		p.proxyError(w, err)
		return
	}
	w.Header().Set("Docker-Content-Digest", string(d))
	w.WriteHeader(http.StatusCreated)
}

// pushToShard pushes a staged blob to its owning shard group (with
// failover) and warms the pull-through cache with it.
func (p *Proxy) pushToShard(ctx context.Context, staging distrib.BlobSource, name string, d digest.Digest) error {
	g := p.groupFor(d)
	err := p.withGroup(g, func(base string) error {
		return p.clientFor(base).PushBlob(ctx, name, staging, d)
	})
	if err != nil {
		return err
	}
	p.cacheAdd(staging, d)
	return nil
}

// --- manifests and tags ---

// blobExists answers the fleet-wide referential check: the cache or
// the owning shard group holds d.
func (p *Proxy) blobExists(ctx context.Context, d digest.Digest) (bool, error) {
	if p.cacheHas(d) {
		return true, nil
	}
	g := p.groupFor(d)
	var found bool
	err := p.withGroup(g, func(base string) error {
		ok, err := p.clientFor(base).HasBlob(ctx, "fleet", d)
		if err != nil {
			return err
		}
		found = ok
		return nil
	})
	return found, err
}

// putManifest performs the fleet-wide referential check and fans the
// manifest out to every shard group, so any shard can resolve tags
// and anchor its own GC roots. Acknowledged only once every group
// holds it.
func (p *Proxy) putManifest(w http.ResponseWriter, r *http.Request, name, ref string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxManifestSize))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	var refs struct {
		Config    *oci.Descriptor  `json:"config"`
		Layers    []oci.Descriptor `json:"layers"`
		Manifests []oci.Descriptor `json:"manifests"`
	}
	if err := json.Unmarshal(body, &refs); err != nil {
		http.Error(w, "manifest is not valid JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	var referenced []oci.Descriptor
	if refs.Config != nil && refs.Config.Digest != "" {
		referenced = append(referenced, *refs.Config)
	}
	referenced = append(referenced, refs.Layers...)
	referenced = append(referenced, refs.Manifests...)
	for _, rd := range referenced {
		ok, err := p.blobExists(r.Context(), rd.Digest)
		if err != nil {
			p.proxyError(w, err)
			return
		}
		if !ok {
			http.Error(w, fmt.Sprintf("manifest references missing blob %s", rd.Digest), http.StatusBadRequest)
			return
		}
	}
	d := digest.FromBytes(body)
	if want, err := digest.Parse(ref); err == nil && want != d {
		http.Error(w, fmt.Sprintf("manifest digest mismatch: content is %s, ref is %s", d, want), http.StatusBadRequest)
		return
	}
	mediaType := r.Header.Get("Content-Type")
	if mediaType == "" {
		mediaType = oci.MediaTypeManifest
		if len(refs.Manifests) > 0 {
			mediaType = oci.MediaTypeIndex
		}
	}
	for _, name2 := range p.order {
		g := p.groups[name2]
		err := p.withGroup(g, func(base string) error {
			return putManifestTo(r.Context(), p.httpClient(), base, name, ref, mediaType, body)
		})
		if err != nil {
			p.proxyError(w, err)
			return
		}
	}
	w.Header().Set("Location", "/v2/"+name+"/manifests/"+string(d))
	w.Header().Set("Docker-Content-Digest", string(d))
	w.WriteHeader(http.StatusCreated)
}

// getManifest serves manifest GET/HEAD. Manifests are fanned out to
// every shard, so the owner of "name:ref" is just the deterministic
// first stop; any healthy group can answer.
func (p *Proxy) getManifest(w http.ResponseWriter, r *http.Request, name, ref string) {
	var lastErr error
	for _, g := range p.groupsFrom(name + ":" + ref) {
		err := p.withGroup(g, func(base string) error {
			req, err := http.NewRequestWithContext(r.Context(), r.Method, base+"/v2/"+name+"/manifests/"+ref, nil)
			if err != nil {
				return err
			}
			if acc := r.Header.Get("Accept"); acc != "" {
				req.Header.Set("Accept", acc)
			}
			resp, err := p.httpClient().Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
				if resp.StatusCode == http.StatusNotFound {
					return notFoundErr(base, strings.TrimSpace(string(msg)))
				}
				return fmt.Errorf("fleet: GET %s: status %s: %s", base, resp.Status, strings.TrimSpace(string(msg)))
			}
			relayResponse(w, resp)
			return nil
		})
		if err == nil {
			return
		}
		lastErr = err
		if distrib.IsNotFound(err) {
			// Every shard holds every manifest: the owner's definitive
			// 404 is the fleet's answer.
			break
		}
	}
	p.proxyError(w, lastErr)
}

// listTags relays the tags/list endpoint; refs are fanned out, so the
// first healthy group answers for the fleet.
func (p *Proxy) listTags(w http.ResponseWriter, r *http.Request, name string) {
	var lastErr error
	for _, g := range p.groupsFrom(name) {
		err := p.withGroup(g, func(base string) error {
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, base+"/v2/"+name+"/tags/list", nil)
			if err != nil {
				return err
			}
			resp, err := p.httpClient().Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
				return fmt.Errorf("fleet: GET tags %s: status %s: %s", base, resp.Status, strings.TrimSpace(string(msg)))
			}
			relayResponse(w, resp)
			return nil
		})
		if err == nil {
			return
		}
		lastErr = err
	}
	p.proxyError(w, lastErr)
}

// notFoundErr fabricates a distrib-recognizable 404 so failover and
// pass-through logic can classify it.
func notFoundErr(url, msg string) error {
	return &notFoundError{url: url, msg: msg}
}

type notFoundError struct{ url, msg string }

func (e *notFoundError) Error() string {
	return fmt.Sprintf("fleet: %s: not found: %s", e.url, e.msg)
}

// --- farm forwarding ---

// forwardFarm relays /farm/v1 control-plane requests to the
// configured scheduler so workers and executors need only the proxy
// URL.
func (p *Proxy) forwardFarm(w http.ResponseWriter, r *http.Request) {
	url := strings.TrimRight(p.FarmBackend, "/") + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := p.httpClient().Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// --- routing table ---

// Table is the proxy's shareable routing view: the ring membership
// (stable encoding) plus each shard's current leader. A fleet-aware
// distrib.Client resolves blob endpoints from it and talks to shards
// directly, leaving only manifest fan-out on the proxy.
type Table struct {
	Vnodes  int               `json:"vnodes"`
	Shards  []string          `json:"shards"`
	Leaders map[string]string `json:"leaders"`
}

// Resolver compiles the table into a distrib.Client Resolver.
func (t Table) Resolver() (func(digest.Digest) (string, bool), error) {
	ring, err := NewRing(t.Shards, t.Vnodes)
	if err != nil {
		return nil, err
	}
	leaders := make(map[string]string, len(t.Leaders))
	for k, v := range t.Leaders {
		leaders[k] = v
	}
	return func(d digest.Digest) (string, bool) {
		addr, ok := leaders[ring.Owner(d)]
		return addr, ok
	}, nil
}

// Table snapshots the proxy's current routing table.
func (p *Proxy) Table() Table {
	t := Table{Vnodes: p.ring.Vnodes(), Shards: p.ring.Shards(), Leaders: make(map[string]string, len(p.groups))}
	for name, g := range p.groups {
		t.Leaders[name] = g.Leader()
	}
	return t
}

func (p *Proxy) serveTable(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "unsupported operation", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(p.Table())
}

// FetchTable retrieves the routing table from a proxy at base.
func FetchTable(ctx context.Context, hc *http.Client, base string) (Table, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(base, "/")+TablePath, nil)
	if err != nil {
		return Table{}, err
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return Table{}, fmt.Errorf("fleet: fetching table: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Table{}, fmt.Errorf("fleet: fetching table: status %s", resp.Status)
	}
	var t Table
	if err := json.NewDecoder(resp.Body).Decode(&t); err != nil {
		return Table{}, fmt.Errorf("fleet: decoding table: %w", err)
	}
	return t, nil
}

// --- heartbeat watch ---

// Watch pings every shard leader at interval until ctx is done,
// promoting a group's next replica after HeartbeatMisses consecutive
// failures — failover for idle fleets, complementing the immediate
// request-path promotion in withGroup.
func (p *Proxy) Watch(ctx context.Context, interval time.Duration) {
	for {
		if err := ctxutil.Sleep(ctx, interval); err != nil {
			return
		}
		p.CheckLeaders(ctx, interval)
	}
}

// CheckLeaders performs one heartbeat round: each group's current
// leader is pinged (bounded by timeout) and promoted past after
// HeartbeatMisses consecutive losses.
func (p *Proxy) CheckLeaders(ctx context.Context, timeout time.Duration) {
	misses := p.HeartbeatMisses
	if misses <= 0 {
		misses = DefaultHeartbeatMisses
	}
	for _, name := range p.order {
		g := p.groups[name]
		leader := g.Leader()
		pctx, cancel := context.WithTimeout(ctx, timeout)
		err := p.clientFor(leader).Ping(pctx)
		cancel()
		if err == nil {
			g.noteBeat(leader)
			continue
		}
		if g.noteMiss(leader) >= misses {
			g.promoteFrom(leader)
		}
	}
}
