package fleet_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"comtainer/internal/actioncache"
	"comtainer/internal/core"
	"comtainer/internal/core/adapter"
	"comtainer/internal/oci"
	"comtainer/internal/remoteexec"
	"comtainer/internal/sysprofile"
	"comtainer/internal/workloads"
)

// buildApp builds one workload's extended image on a fresh user side.
func buildApp(t *testing.T, sys *sysprofile.System, name string) (*core.UserSide, core.BuildResult) {
	t.Helper()
	user, err := core.NewUserSide(sys.ISA)
	if err != nil {
		t.Fatal(err)
	}
	app, err := workloads.Find(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := user.BuildExtended(app)
	if err != nil {
		t.Fatal(err)
	}
	return user, res
}

// rebuild pulls and rebuilds the app on a fresh system side with the
// given executor (nil = all-local) and returns the +coMre digest.
func rebuild(t *testing.T, sys *sysprofile.System, user *core.UserSide, res core.BuildResult, farm *remoteexec.Executor) oci.Descriptor {
	t.Helper()
	system, err := core.NewSystemSide(sys)
	if err != nil {
		t.Fatal(err)
	}
	system.RebuildWorkers = 4
	system.RemoteExec = farm
	if err := system.Pull(user.Repo, res.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	desc, _, err := system.Rebuild(res.DistTag, adapter.DefaultAdapted(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return desc
}

// TestFleetFarmRebuildThroughProxy points the whole build farm — the
// worker's blob plane, the shared remote action cache, and the
// executor — at the fleet proxy: /farm/v1 forwards to the scheduler
// while payloads and cache documents land on sharded, fanned-out
// registries. The remote rebuild must match the local one, and the
// cache documents must actually be spread across the shards.
func TestFleetFarmRebuildThroughProxy(t *testing.T) {
	sys := sysprofile.X86Cluster()
	user, res := buildApp(t, sys, "hpccg")
	local := rebuild(t, sys, user, res, nil)

	sched := remoteexec.NewScheduler()
	schedTS := httptest.NewServer(sched.Handler())
	t.Cleanup(schedTS.Close)
	p, ts, shards := startFleet(t, 1, 1)
	p.FarmBackend = schedTS.URL
	ts.Config.Handler = p.Handler() // rebuild routes now that FarmBackend is set

	var wg sync.WaitGroup
	t.Cleanup(wg.Wait)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := 0; i < 2; i++ {
		w := remoteexec.NewWorker(ts.URL, sys, sys.Toolchains)
		w.Cache = actioncache.NewRemoteCacheClient(w.Client, "")
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx) // lifecycle errors surface as farm-level fallback
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(sched.Status().Workers) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers did not register through the proxy in time")
		}
		time.Sleep(5 * time.Millisecond)
	}

	exec := remoteexec.NewExecutor(ts.URL, sys, sys.Toolchains)
	remote := rebuild(t, sys, user, res, exec)
	if remote.Digest != local.Digest {
		t.Fatalf("farm-through-proxy rebuild digest %s differs from local %s", remote.Digest, local.Digest)
	}
	st := exec.Stats()
	if st.Remote == 0 || st.Errors != 0 {
		t.Fatalf("executor stats %s: want remote actions through the proxy", st)
	}

	// Action-cache documents are manifests: fanned out to every shard.
	for i, sh := range shards {
		var acTags int
		for _, key := range sh.replicas[0].srv.Tags() {
			if strings.Contains(key, ":ac-") {
				acTags++
			}
		}
		if acTags < int(2*st.Remote) {
			t.Fatalf("shard %d holds %d action-cache tags for %d remote actions, want 2 per action", i, acTags, st.Remote)
		}
	}
	// Their blobs are partitioned: with dozens of documents, both
	// shards must hold some.
	for i, sh := range shards {
		if len(sh.replicas[0].srv.Blobs().Digests()) == 0 {
			t.Fatalf("shard %d holds no blobs; farm data plane was not sharded", i)
		}
	}

	// A second executor replays everything from the fleet-backed cache.
	exec2 := remoteexec.NewExecutor(ts.URL, sys, sys.Toolchains)
	again := rebuild(t, sys, user, res, exec2)
	if again.Digest != local.Digest {
		t.Fatalf("cache-replay rebuild digest %s differs from local %s", again.Digest, local.Digest)
	}
}
