package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"comtainer/internal/digest"
	"comtainer/internal/distrib"
)

// replicationRepo is the repository name replication pushes use; the
// registry's blob namespace is repository-agnostic, so any stable
// name works.
const replicationRepo = "fleet-replication"

// Replicator is the leader side of shard replication — a
// registry.CommitHook. Each committed write is appended to the
// shard's write log, then forwarded synchronously to every follower;
// the hook (and therefore the leader's 201) only succeeds once the
// followers have durably written it, so an acknowledged push survives
// killing the leader.
//
// Every replica of a shard can run a symmetric Replicator listing its
// peers: replication requests are stamped with
// distrib.ReplicatedHeader, which the receiving registry uses to skip
// its own hook, so writes fan out exactly one hop. After a follower
// is promoted, its own Replicator keeps replicating to the replicas
// that remain.
type Replicator struct {
	log *WriteLog
	src distrib.BlobSource

	mu        sync.Mutex
	http      *http.Client
	followers []string
	clients   map[string]*distrib.Client
}

// NewReplicator returns a replicator reading blob content from src
// (the leader's own store), logging to log, forwarding to followers.
func NewReplicator(src distrib.BlobSource, log *WriteLog, followers ...string) *Replicator {
	if log == nil {
		log = &WriteLog{}
	}
	r := &Replicator{log: log, src: src}
	r.SetFollowers(followers...)
	return r
}

// SetHTTPClient replaces the transport used for follower traffic
// (tests inject fault transports here). Must be called before use.
func (r *Replicator) SetHTTPClient(hc *http.Client) {
	r.mu.Lock()
	r.http = hc
	r.clients = nil
	r.mu.Unlock()
}

// SetFollowers replaces the follower set.
func (r *Replicator) SetFollowers(addrs ...string) {
	r.mu.Lock()
	r.followers = append([]string(nil), addrs...)
	r.mu.Unlock()
}

// Followers returns the current follower base URLs.
func (r *Replicator) Followers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.followers...)
}

// Log exposes the shard's write log.
func (r *Replicator) Log() *WriteLog { return r.log }

// headerTransport stamps every outgoing request with one header —
// here distrib.ReplicatedHeader, so the receiving replica's own
// commit hook stays quiet and replication fans out exactly one hop.
type headerTransport struct {
	base       http.RoundTripper
	key, value string
}

func (t headerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	req = req.Clone(req.Context())
	req.Header.Set(t.key, t.value)
	return t.base.RoundTrip(req)
}

// replicationClient wraps hc so every request carries the
// replication marker header.
func replicationClient(hc *http.Client) *http.Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	rt := hc.Transport
	if rt == nil {
		rt = http.DefaultTransport
	}
	wrapped := *hc
	wrapped.Transport = headerTransport{base: rt, key: distrib.ReplicatedHeader, value: "1"}
	return &wrapped
}

func (r *Replicator) clientFor(base string) *distrib.Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.clients[base]; ok {
		return c
	}
	c := distrib.NewClient(base)
	c.HTTP = replicationClient(r.http)
	if r.clients == nil {
		r.clients = make(map[string]*distrib.Client)
	}
	r.clients[base] = c
	return c
}

// BlobCommitted logs the commit and pushes the blob to every
// follower, returning only after all of them hold it durably.
func (r *Replicator) BlobCommitted(ctx context.Context, d digest.Digest) error {
	if _, err := r.log.Append(LogEntry{Kind: KindBlob, Digest: d}); err != nil {
		return err
	}
	for _, f := range r.Followers() {
		if err := r.clientFor(f).PushBlob(ctx, replicationRepo, r.src, d); err != nil {
			return fmt.Errorf("fleet: replicating blob %s to %s: %w", d.Short(), f, err)
		}
	}
	return nil
}

// ManifestCommitted logs the commit and re-issues the manifest PUT on
// every follower under the same reference.
func (r *Replicator) ManifestCommitted(ctx context.Context, name, ref, mediaType string, body []byte) error {
	entry := LogEntry{Kind: KindManifest, Digest: digest.FromBytes(body), Name: name, Ref: ref, MediaType: mediaType}
	if _, err := r.log.Append(entry); err != nil {
		return err
	}
	hc := replicationClient(r.httpClient())
	for _, f := range r.Followers() {
		if err := putManifestTo(ctx, hc, f, name, ref, mediaType, body); err != nil {
			return fmt.Errorf("fleet: replicating manifest %s:%s to %s: %w", name, ref, f, err)
		}
	}
	return nil
}

func (r *Replicator) httpClient() *http.Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.http
}

// Sync replays the whole write log to addr — catching a follower up
// after it rejoins (restart, or a fresh replica added to the shard).
// Entries whose blob has since been garbage-collected locally are
// skipped: whatever made them collectable (ref removal) is in a later
// entry or no longer acknowledged state.
func (r *Replicator) Sync(ctx context.Context, addr string) error {
	c := r.clientFor(addr)
	hc := replicationClient(r.httpClient())
	for _, e := range r.log.Entries(0) {
		if !r.src.Has(e.Digest) {
			continue
		}
		switch e.Kind {
		case KindBlob:
			if err := c.PushBlob(ctx, replicationRepo, r.src, e.Digest); err != nil {
				return fmt.Errorf("fleet: sync blob %s to %s: %w", e.Digest.Short(), addr, err)
			}
		case KindManifest:
			body, err := distrib.ReadBlob(r.src, e.Digest)
			if err != nil {
				return fmt.Errorf("fleet: sync reading manifest %s: %w", e.Digest.Short(), err)
			}
			if err := putManifestTo(ctx, hc, addr, e.Name, e.Ref, e.MediaType, body); err != nil {
				return fmt.Errorf("fleet: sync manifest %s:%s to %s: %w", e.Name, e.Ref, addr, err)
			}
		}
	}
	return nil
}

// putManifestTo issues one manifest PUT against base — shared by
// replication (marker header set by the caller's client) and the
// proxy's fan-out (plain client).
func putManifestTo(ctx context.Context, hc *http.Client, base, name, ref, mediaType string, body []byte) error {
	url := strings.TrimRight(base, "/") + "/v2/" + name + "/manifests/" + ref
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", mediaType)
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fleet: PUT %s: status %s: %s", url, resp.Status, strings.TrimSpace(string(msg)))
	}
	return nil
}
