package containerfile

import (
	"strings"
	"testing"

	"comtainer/internal/fsim"
	"comtainer/internal/hijack"
	"comtainer/internal/oci"
	"comtainer/internal/toolchain"
)

func TestPerInstructionLayers(t *testing.T) {
	b := newBuilder(t)
	cf, err := Parse(twoStage)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := b.Build(cf, "build")
	if err != nil {
		t.Fatal(err)
	}
	img, err := oci.LoadImage(b.Repo.Store, desc)
	if err != nil {
		t.Fatal(err)
	}
	// build stage: base(1) + COPY + RUN + RUN + raw-log = 5 layers.
	// (WORKDIR creates a dir, folded into the next cut? No — WORKDIR is
	// metadata-only here because /app/src already exists after COPY.)
	if got := len(img.Manifest.Layers); got != 5 {
		var kinds []string
		for _, h := range img.Config.History {
			kinds = append(kinds, h.CreatedBy)
		}
		t.Errorf("layers = %d, history = %v", got, kinds)
	}
	if img.Config.Config.Labels[BaseLayersLabel] != "1" {
		t.Errorf("base-layers label = %q", img.Config.Config.Labels[BaseLayersLabel])
	}
	// History names the instructions.
	joined := ""
	for _, h := range img.Config.History {
		joined += h.CreatedBy + "\n"
	}
	for _, want := range []string{"COPY /src /app/src", "RUN gcc -O2 -c main.c", "coMtainer raw build log"} {
		if !strings.Contains(joined, want) {
			t.Errorf("history missing %q:\n%s", want, joined)
		}
	}
}

func TestBuildCacheHitsAndReplay(t *testing.T) {
	cache := NewBuildCache()
	build := func() (*Builder, oci.Descriptor) {
		b := newBuilder(t)
		b.Cache = cache
		cf, err := Parse(twoStage)
		if err != nil {
			t.Fatal(err)
		}
		desc, err := b.Build(cf, "build")
		if err != nil {
			t.Fatal(err)
		}
		return b, desc
	}
	b1, d1 := build()
	hits, misses := cache.Stats()
	if hits != 0 || misses == 0 {
		t.Errorf("first build: hits=%d misses=%d", hits, misses)
	}
	invs1 := b1.Recorder.Len()

	b2, d2 := build()
	hits2, _ := cache.Stats()
	if hits2 == 0 {
		t.Error("second build had no cache hits")
	}
	// The cached build reproduces the image bit-for-bit...
	if d1.Digest != d2.Digest {
		t.Error("cached rebuild produced a different image")
	}
	// ...including the replayed hijacker log.
	if b2.Recorder.Len() != invs1 {
		t.Errorf("replayed %d invocations, want %d", b2.Recorder.Len(), invs1)
	}
	img, err := oci.LoadImage(b2.Repo.Store, d2)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	logged, err := hijack.Load(flat)
	if err != nil {
		t.Fatal(err)
	}
	if len(logged) != invs1 {
		t.Errorf("raw log has %d invocations, want %d", len(logged), invs1)
	}
}

func TestBuildCacheInvalidatedByContextChange(t *testing.T) {
	cache := NewBuildCache()
	run := func(mainBody string) oci.Descriptor {
		b := newBuilder(t)
		b.Cache = cache
		b.Context = fsim.New()
		b.Context.WriteFile("/src/main.c", []byte(mainBody), 0o644)
		b.Context.WriteFile("/src/util.c", []byte("double sq(double x){return x*x;}\n"), 0o644)
		cf, err := Parse(twoStage)
		if err != nil {
			t.Fatal(err)
		}
		desc, err := b.Build(cf, "build")
		if err != nil {
			t.Fatal(err)
		}
		return desc
	}
	d1 := run("int main(){return 0;}\n")
	d2 := run("int main(){return 1;}\n")
	if d1.Digest == d2.Digest {
		t.Error("changed context produced the same image (stale cache)")
	}
}

func TestBuildCacheInvalidatedByEnvChange(t *testing.T) {
	cache := NewBuildCache()
	run := func(opt string) *toolchain.Artifact {
		b := newBuilder(t)
		b.Cache = cache
		cf, err := Parse(`FROM comt:env
ENV COPT=` + opt + `
COPY /src /w
WORKDIR /w
RUN gcc $COPT -c main.c -o main.o
`)
		if err != nil {
			t.Fatal(err)
		}
		desc, err := b.Build(cf, "")
		if err != nil {
			t.Fatal(err)
		}
		img, _ := oci.LoadImage(b.Repo.Store, desc)
		flat, _ := img.Flatten()
		data, err := flat.ReadFile("/w/main.o")
		if err != nil {
			t.Fatal(err)
		}
		art, err := toolchain.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		return art
	}
	if run("-O1").OptLevel != "1" {
		t.Error("first build wrong")
	}
	if got := run("-O3").OptLevel; got != "3" {
		t.Errorf("env change served stale object: OptLevel = %q", got)
	}
}

func TestRunLocalCd(t *testing.T) {
	// cd inside a RUN must not leak into the next instruction (each RUN
	// is a fresh shell, as in real builders).
	b := newBuilder(t)
	cf, err := Parse(`FROM comt:env
COPY /src /w/src
WORKDIR /w
RUN mkdir /elsewhere && cd /elsewhere && touch here.txt
RUN touch after.txt
`)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := b.Build(cf, "")
	if err != nil {
		t.Fatal(err)
	}
	img, _ := oci.LoadImage(b.Repo.Store, desc)
	flat, _ := img.Flatten()
	if !flat.Exists("/elsewhere/here.txt") {
		t.Error("cd within RUN did not apply")
	}
	if flat.Exists("/elsewhere/after.txt") {
		t.Error("cd leaked across RUN instructions")
	}
	if !flat.Exists("/w/after.txt") {
		t.Error("WORKDIR not restored for the second RUN")
	}
}
