// Package containerfile implements a Dockerfile/Containerfile parser and a
// multi-stage build engine executing against the fsim/oci substrates.
//
// This reproduces the conventional two-stage HPC image build of the paper's
// Figure 2 — a `build` stage with toolchains compiling the application and
// a `dist` stage assembled from the build stage's outputs — which the
// coMtainer workflow then extends.
package containerfile

import (
	"fmt"
	"strings"
)

// Instruction is one parsed Containerfile instruction.
type Instruction struct {
	Cmd  string   // canonical upper-case name: FROM, RUN, COPY, ...
	Args []string // whitespace-split arguments (RUN keeps Raw authoritative)
	Raw  string   // argument text exactly as written (joined continuations)
	Line int      // 1-based line of the instruction
}

// Stage is one FROM-delimited build stage.
type Stage struct {
	Name         string // AS name, or its ordinal as a string
	Index        int
	BaseRef      string
	Instructions []Instruction
}

// Containerfile is a parsed multi-stage build file.
type Containerfile struct {
	Stages []Stage
}

// StageByName finds a stage by AS name or ordinal string.
func (cf *Containerfile) StageByName(name string) (*Stage, bool) {
	for i := range cf.Stages {
		if cf.Stages[i].Name == name || fmt.Sprint(cf.Stages[i].Index) == name {
			return &cf.Stages[i], true
		}
	}
	return nil, false
}

// knownInstructions lists the instruction set the engine understands.
var knownInstructions = map[string]bool{
	"FROM": true, "RUN": true, "COPY": true, "ADD": true, "ENV": true,
	"WORKDIR": true, "ARG": true, "LABEL": true, "ENTRYPOINT": true,
	"CMD": true, "USER": true, "EXPOSE": true, "VOLUME": true,
}

// Parse parses Containerfile text. Comment lines and blank lines are
// skipped; a trailing backslash continues an instruction on the next line.
func Parse(text string) (*Containerfile, error) {
	cf := &Containerfile{}
	lines := strings.Split(text, "\n")
	i := 0
	for i < len(lines) {
		startLine := i + 1
		line := strings.TrimSpace(lines[i])
		i++
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Join continuations.
		for strings.HasSuffix(line, "\\") && i < len(lines) {
			line = strings.TrimSuffix(line, "\\") + "\n" + strings.TrimSpace(lines[i])
			i++
		}
		word, rest, _ := strings.Cut(line, " ")
		cmd := strings.ToUpper(word)
		if !knownInstructions[cmd] {
			return nil, fmt.Errorf("containerfile: line %d: unknown instruction %q", startLine, word)
		}
		rest = strings.TrimSpace(rest)
		inst := Instruction{
			Cmd:  cmd,
			Args: strings.Fields(rest),
			Raw:  rest,
			Line: startLine,
		}
		if cmd == "FROM" {
			name := ""
			base := ""
			switch {
			case len(inst.Args) == 1:
				base = inst.Args[0]
			case len(inst.Args) == 3 && strings.EqualFold(inst.Args[1], "as"):
				base, name = inst.Args[0], inst.Args[2]
			default:
				return nil, fmt.Errorf("containerfile: line %d: malformed FROM %q", startLine, rest)
			}
			idx := len(cf.Stages)
			if name == "" {
				name = fmt.Sprint(idx)
			}
			cf.Stages = append(cf.Stages, Stage{Name: name, Index: idx, BaseRef: base})
			continue
		}
		if len(cf.Stages) == 0 {
			return nil, fmt.Errorf("containerfile: line %d: %s before first FROM", startLine, cmd)
		}
		cur := &cf.Stages[len(cf.Stages)-1]
		cur.Instructions = append(cur.Instructions, inst)
	}
	if len(cf.Stages) == 0 {
		return nil, fmt.Errorf("containerfile: no FROM instruction")
	}
	return cf, nil
}

// Render reconstructs Containerfile text from the parsed form — used by the
// cross-ISA adapter to materialize patched build scripts and by the Fig.-11
// harness to count changed lines.
func (cf *Containerfile) Render() string {
	var b strings.Builder
	for si, st := range cf.Stages {
		if si > 0 {
			b.WriteString("\n")
		}
		if st.Name != fmt.Sprint(st.Index) {
			fmt.Fprintf(&b, "FROM %s AS %s\n", st.BaseRef, st.Name)
		} else {
			fmt.Fprintf(&b, "FROM %s\n", st.BaseRef)
		}
		for _, inst := range st.Instructions {
			raw := strings.ReplaceAll(inst.Raw, "\n", " \\\n    ")
			fmt.Fprintf(&b, "%s %s\n", inst.Cmd, raw)
		}
	}
	return b.String()
}
