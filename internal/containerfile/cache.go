package containerfile

import (
	"sort"
	"strings"
	"sync"

	"comtainer/internal/digest"
	"comtainer/internal/fsim"
	"comtainer/internal/hijack"
	"comtainer/internal/tarfs"
)

// BuildCache memoizes instruction layers across builds, keyed by the
// instruction chain — the same scheme Docker's build cache uses. A cached
// RUN also replays the toolchain invocations it recorded, so the
// hijacker's raw build log stays complete even for fully-cached builds
// (without this, coMtainer's front-end would see nothing to analyze).
type BuildCache struct {
	mu      sync.Mutex
	entries map[digest.Digest]*cacheEntry
	hits    int
	misses  int
}

// cacheEntry is one memoized instruction result.
type cacheEntry struct {
	layer       *fsim.FS
	invocations []hijack.Invocation
}

// NewBuildCache returns an empty build cache.
func NewBuildCache() *BuildCache {
	return &BuildCache{entries: make(map[digest.Digest]*cacheEntry)}
}

// Stats returns the hit/miss counters.
func (c *BuildCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// get returns the cached layer for key, if any.
func (c *BuildCache) get(key digest.Digest) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

// put stores an instruction result.
func (c *BuildCache) put(key digest.Digest, layer *fsim.FS, invs []hijack.Invocation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = &cacheEntry{layer: layer.Clone(), invocations: invs}
}

// envDigest hashes the environment that instruction expansion sees, so a
// changed ENV invalidates downstream cached RUNs.
func envDigest(env map[string]string) digest.Digest {
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(env[k])
		b.WriteByte('\n')
	}
	return digest.FromString(b.String())
}

// contextDigest hashes an FS's full content — the conservative COPY cache
// key (any context change invalidates).
func contextDigest(fs *fsim.FS) digest.Digest {
	if fs == nil {
		return digest.FromString("no-context")
	}
	raw, err := tarfs.Marshal(fs)
	if err != nil {
		return digest.FromString("unmarshalable-context")
	}
	return digest.FromBytes(raw)
}

// instructionKey chains the cache key forward over one instruction.
func instructionKey(parent digest.Digest, inst Instruction, env map[string]string, copySource digest.Digest) digest.Digest {
	return digest.FromString(strings.Join([]string{
		string(parent),
		inst.Cmd,
		inst.Raw,
		string(envDigest(env)),
		string(copySource),
	}, "\x00"))
}
