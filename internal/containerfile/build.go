package containerfile

import (
	"errors"
	"strconv"

	"comtainer/internal/digest"
	"encoding/json"
	"fmt"
	"path"
	"strings"

	"comtainer/internal/dpkg"
	"comtainer/internal/fsim"
	"comtainer/internal/hijack"
	"comtainer/internal/makesim"
	"comtainer/internal/oci"
	"comtainer/internal/shell"
	"comtainer/internal/toolchain"
)

// Image labels coMtainer base images carry; the builder uses RoleLabel to
// decide where the hijacker's raw build log is persisted.
const (
	RoleLabel   = "io.comtainer.role"
	RoleEnv     = "env"
	RoleBase    = "base"
	RoleSysenv  = "sysenv"
	RoleRebase  = "rebase"
	RoleGeneric = ""
)

// Builder executes multi-stage Containerfile builds.
type Builder struct {
	// Repo resolves FROM references and receives built images.
	Repo *oci.Repository
	// Context is the build context COPY reads from (nil = empty).
	Context *fsim.FS
	// Registry provides the toolchains available inside build containers.
	Registry *toolchain.Registry
	// AptIndex serves `apt-get install` inside RUN instructions.
	AptIndex *dpkg.Index
	// Recorder, when set, captures toolchain invocations (the hijacker).
	Recorder *hijack.Recorder
	// Args are build arguments usable via ARG/$name expansion.
	Args map[string]string

	// Cache, when set, memoizes instruction layers across builds (and
	// replays their recorded toolchain invocations).
	Cache *BuildCache

	// stageLookup tracks completed stages of the current Build call so
	// COPY --from and FROM <stage> can reference them.
	stageLookup map[string]*stageState
}

// stageState is the mutable state of one executing build container.
type stageState struct {
	name    string
	fs      *fsim.FS
	baseFS  *fsim.FS
	baseImg *oci.Image
	env     map[string]string
	cwd     string
	config  oci.ExecConfig
	runner  *toolchain.Runner
	isEnv   bool

	// Per-instruction layering (how real builders commit images): each
	// FS-changing instruction cuts one layer, snapshot tracks the state
	// as of the last cut, history mirrors the layers, and chainKey is the
	// build-cache chain position.
	layers   []*fsim.FS
	snapshot *fsim.FS
	history  []oci.HistoryEntry
	chainKey digest.Digest
}

// Build executes the Containerfile through the target stage (empty target =
// last stage) and returns the target stage's image descriptor. All stages
// built along the way are accessible to COPY --from.
func (b *Builder) Build(cf *Containerfile, target string) (oci.Descriptor, error) {
	if b.Repo == nil {
		return oci.Descriptor{}, fmt.Errorf("containerfile: builder has no repository")
	}
	targetIdx := len(cf.Stages) - 1
	if target != "" {
		st, ok := cf.StageByName(target)
		if !ok {
			return oci.Descriptor{}, fmt.Errorf("containerfile: no stage named %q", target)
		}
		targetIdx = st.Index
	}
	states := make(map[string]*stageState)
	b.stageLookup = states
	defer func() { b.stageLookup = nil }()
	var desc oci.Descriptor
	for i := 0; i <= targetIdx; i++ {
		st := &cf.Stages[i]
		state, err := b.runStage(st, states)
		if err != nil {
			return oci.Descriptor{}, err
		}
		states[st.Name] = state
		states[fmt.Sprint(st.Index)] = state
		d, err := b.commit(state)
		if err != nil {
			return oci.Descriptor{}, err
		}
		if i == targetIdx {
			desc = d
		}
	}
	return desc, nil
}

// resolveBase loads the FROM reference: another stage or a repo tag. The
// returned digest seeds the stage's build-cache chain.
func (b *Builder) resolveBase(ref string, states map[string]*stageState) (*oci.Image, *fsim.FS, digest.Digest, error) {
	if prior, ok := states[ref]; ok {
		// FROM an earlier stage: snapshot its current state.
		img := prior.baseImg
		return img, prior.fs.Clone(), prior.chainKey, nil
	}
	desc, err := b.Repo.Resolve(ref)
	if err != nil {
		return nil, nil, "", fmt.Errorf("containerfile: resolving FROM %s: %w", ref, err)
	}
	img, err := oci.LoadImage(b.Repo.Store, desc)
	if err != nil {
		return nil, nil, "", fmt.Errorf("containerfile: resolving FROM %s: %w", ref, err)
	}
	flat, err := img.Flatten()
	if err != nil {
		return nil, nil, "", fmt.Errorf("containerfile: flattening %s: %w", ref, err)
	}
	return img, flat, desc.Digest, nil
}

func (b *Builder) runStage(st *Stage, states map[string]*stageState) (*stageState, error) {
	img, fs, seed, err := b.resolveBase(st.BaseRef, states)
	if err != nil {
		return nil, err
	}
	state := &stageState{
		name:    st.Name,
		fs:      fs,
		baseFS:  fs.Clone(),
		baseImg: img,
		env:     map[string]string{},
		cwd:     "/",
		config:  img.Config.Config,
		isEnv:   img.Config.Config.Labels[RoleLabel] == RoleEnv,
	}
	for _, kv := range img.Config.Config.Env {
		if k, v, ok := strings.Cut(kv, "="); ok {
			state.env[k] = v
		}
	}
	if wd := img.Config.Config.WorkingDir; wd != "" {
		state.cwd = wd
	}
	for k, v := range b.Args {
		state.env[k] = v
	}
	state.runner = toolchain.NewRunner(state.fs, b.Registry)
	state.snapshot = fs.Clone()
	state.chainKey = seed

	for _, inst := range st.Instructions {
		if err := b.execInstruction(state, inst); err != nil {
			return nil, fmt.Errorf("containerfile: stage %s line %d (%s): %w",
				st.Name, inst.Line, inst.Cmd, err)
		}
	}
	// Persist the hijacker log inside Env-based containers so the
	// front-end can analyze the build from the image alone; the log gets
	// its own layer.
	if state.isEnv && b.Recorder != nil {
		if err := b.Recorder.Save(state.fs); err != nil {
			return nil, err
		}
		state.cutLayer("coMtainer raw build log")
	}
	return state, nil
}

// cutLayer diffs the state against the last snapshot and, when anything
// changed, appends an instruction layer plus its history entry.
func (s *stageState) cutLayer(createdBy string) *fsim.FS {
	layer := fsim.Diff(s.snapshot, s.fs)
	entry := oci.HistoryEntry{CreatedBy: createdBy}
	if layer.Len() == 0 {
		entry.EmptyLayer = true
		s.history = append(s.history, entry)
		return layer
	}
	s.layers = append(s.layers, layer)
	s.snapshot = s.fs.Clone()
	s.history = append(s.history, entry)
	return layer
}

// copySourceKey identifies the content a COPY instruction reads, for the
// build-cache chain.
func (b *Builder) copySourceKey(state *stageState, inst Instruction) digest.Digest {
	if inst.Cmd != "COPY" && inst.Cmd != "ADD" {
		return ""
	}
	if len(inst.Args) > 0 && strings.HasPrefix(inst.Args[0], "--from=") {
		ref := strings.TrimPrefix(inst.Args[0], "--from=")
		if prior, ok := b.stageLookup[ref]; ok {
			return prior.chainKey
		}
		if desc, err := b.Repo.Resolve(ref); err == nil {
			return desc.Digest
		}
		return digest.FromString("unknown-copy-source:" + ref)
	}
	return contextDigest(b.Context)
}

// execInstruction runs one instruction with per-instruction layering and
// optional build caching.
func (b *Builder) execInstruction(state *stageState, inst Instruction) error {
	cacheable := inst.Cmd == "RUN" || inst.Cmd == "COPY" || inst.Cmd == "ADD"
	describe := inst.Cmd + " " + inst.Raw
	key := instructionKey(state.chainKey, inst, state.env, b.copySourceKey(state, inst))

	if cacheable && b.Cache != nil {
		if e, ok := b.Cache.get(key); ok {
			state.fs = fsim.Apply(state.fs, e.layer)
			state.runner = toolchain.NewRunner(state.fs, b.Registry)
			state.snapshot = state.fs.Clone()
			state.layers = append(state.layers, e.layer.Clone())
			state.history = append(state.history, oci.HistoryEntry{CreatedBy: describe})
			if b.Recorder != nil {
				for _, inv := range e.invocations {
					b.Recorder.Record(inv.Argv, inv.Cwd, state.name, inv.Env)
				}
			}
			state.chainKey = key
			return nil
		}
	}

	recBefore := 0
	if b.Recorder != nil {
		recBefore = b.Recorder.Len()
	}
	if err := b.exec(state, inst); err != nil {
		return err
	}
	if cacheable {
		layer := state.cutLayer(describe)
		if b.Cache != nil {
			var invs []hijack.Invocation
			if b.Recorder != nil {
				invs = b.Recorder.Invocations()[recBefore:]
			}
			b.Cache.put(key, layer, invs)
		}
	} else {
		state.history = append(state.history, oci.HistoryEntry{CreatedBy: describe, EmptyLayer: true})
	}
	state.chainKey = key
	return nil
}

// BaseLayersLabel records how many leading layers of a committed image
// come from its base image — the front-end's provenance boundary.
const BaseLayersLabel = "io.comtainer.base-layers"

// commit turns a stage state into an image: the base image's layers plus
// one layer per FS-changing instruction.
func (b *Builder) commit(state *stageState) (oci.Descriptor, error) {
	layers, err := state.baseImg.Layers()
	if err != nil {
		return oci.Descriptor{}, err
	}
	baseCount := len(layers)
	// Anything not yet cut (e.g. mutations after the last instruction).
	state.cutLayer("containerfile commit")
	layers = append(layers, state.layers...)
	cfg := oci.ImageConfig{
		Architecture: state.baseImg.Config.Architecture,
		OS:           "linux",
		Config:       state.config,
		History:      append([]oci.HistoryEntry(nil), state.baseImg.Config.History...),
	}
	if cfg.Config.Labels == nil {
		cfg.Config.Labels = map[string]string{}
	} else {
		copied := make(map[string]string, len(cfg.Config.Labels))
		for k, v := range cfg.Config.Labels {
			copied[k] = v
		}
		cfg.Config.Labels = copied
	}
	cfg.Config.Labels[BaseLayersLabel] = strconv.Itoa(baseCount)
	cfg.Config.WorkingDir = state.cwd
	var envList []string
	for k, v := range state.env {
		envList = append(envList, k+"="+v)
	}
	// Deterministic config encoding needs sorted env.
	for i := 0; i < len(envList); i++ {
		for j := i + 1; j < len(envList); j++ {
			if envList[j] < envList[i] {
				envList[i], envList[j] = envList[j], envList[i]
			}
		}
	}
	cfg.Config.Env = envList
	cfg.History = append(cfg.History, state.history...)
	return oci.WriteImage(b.Repo.Store, cfg, layers)
}

func (b *Builder) exec(state *stageState, inst Instruction) error {
	switch inst.Cmd {
	case "RUN":
		return b.execRun(state, inst.Raw)
	case "COPY", "ADD":
		return b.execCopy(state, inst.Args)
	case "ENV":
		return execEnv(state, inst.Raw)
	case "ARG":
		name, def, _ := strings.Cut(strings.TrimSpace(inst.Raw), "=")
		if _, ok := state.env[name]; !ok && def != "" {
			state.env[name] = def
		}
		return nil
	case "WORKDIR":
		dir := expand(strings.TrimSpace(inst.Raw), state.env)
		if !strings.HasPrefix(dir, "/") {
			dir = path.Join(state.cwd, dir)
		}
		state.cwd = fsim.Clean(dir)
		if err := state.fs.MkdirAll(state.cwd, 0o755); err != nil {
			return fmt.Errorf("WORKDIR %s: %w", dir, err)
		}
		return nil
	case "LABEL":
		if state.config.Labels == nil {
			state.config.Labels = map[string]string{}
		}
		for _, kv := range inst.Args {
			if k, v, ok := strings.Cut(kv, "="); ok {
				state.config.Labels[k] = strings.Trim(v, `"`)
			}
		}
		return nil
	case "ENTRYPOINT":
		argv, err := parseExecForm(inst.Raw)
		if err != nil {
			return err
		}
		state.config.Entrypoint = argv
		return nil
	case "CMD":
		argv, err := parseExecForm(inst.Raw)
		if err != nil {
			return err
		}
		state.config.Cmd = argv
		return nil
	case "USER", "EXPOSE", "VOLUME":
		return nil // accepted, no effect in the simulation
	default:
		return fmt.Errorf("unhandled instruction %s", inst.Cmd)
	}
}

// parseExecForm parses ENTRYPOINT/CMD in JSON-array or shell form.
func parseExecForm(raw string) ([]string, error) {
	raw = strings.TrimSpace(raw)
	if strings.HasPrefix(raw, "[") {
		var argv []string
		if err := json.Unmarshal([]byte(raw), &argv); err != nil {
			return nil, fmt.Errorf("malformed exec form %q: %w", raw, err)
		}
		return argv, nil
	}
	cmds, err := shell.Parse(raw, nil)
	if err != nil {
		return nil, err
	}
	if len(cmds) != 1 {
		return nil, fmt.Errorf("exec form must be a single command, got %q", raw)
	}
	return cmds[0].Argv, nil
}

// execEnv handles both `ENV K=V K2=V2` and legacy `ENV K V`.
func execEnv(state *stageState, raw string) error {
	fields := strings.Fields(raw)
	if len(fields) == 0 {
		return fmt.Errorf("ENV with no arguments")
	}
	if !strings.Contains(fields[0], "=") {
		if len(fields) < 2 {
			return fmt.Errorf("ENV %s missing value", fields[0])
		}
		state.env[fields[0]] = expand(strings.Join(fields[1:], " "), state.env)
		return nil
	}
	for _, kv := range fields {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("malformed ENV assignment %q", kv)
		}
		state.env[k] = expand(strings.Trim(v, `"`), state.env)
	}
	return nil
}

// expand substitutes $VAR and ${VAR} from env.
func expand(s string, env map[string]string) string {
	cmds, err := shell.Parse(s, shell.MapEnv(env))
	if err != nil || len(cmds) != 1 {
		return s
	}
	return strings.Join(cmds[0].Argv, " ")
}

func (b *Builder) execRun(state *stageState, raw string) error {
	cmds, err := shell.Parse(raw, shell.MapEnv(state.env))
	if err != nil {
		return err
	}
	// Each RUN is a fresh shell: cd does not outlive the instruction.
	savedCwd := state.cwd
	defer func() {
		state.cwd = savedCwd
		state.runner.Cwd = savedCwd
	}()
	for _, cmd := range cmds {
		if err := b.execCommand(state, cmd.Argv); err != nil {
			return fmt.Errorf("RUN %s: %w", cmd, err)
		}
	}
	return nil
}

// execCommand dispatches one simple command: shell built-ins, the package
// manager, or the toolchain (recorded through the hijacker).
func (b *Builder) execCommand(state *stageState, argv []string) error {
	if len(argv) == 0 {
		return nil
	}
	abs := func(p string) string {
		if strings.HasPrefix(p, "/") {
			return fsim.Clean(p)
		}
		return fsim.Clean(path.Join(state.cwd, p))
	}
	switch path.Base(argv[0]) {
	case "cd":
		if len(argv) != 2 {
			return fmt.Errorf("cd: want exactly one argument")
		}
		dst := abs(argv[1])
		if st, err := state.fs.Stat(dst); err != nil || st.Type != fsim.TypeDir {
			return fmt.Errorf("cd: %s: no such directory", argv[1])
		}
		state.cwd = dst
		state.runner.Cwd = dst
		return nil
	case "mkdir":
		for _, a := range argv[1:] {
			if a == "-p" {
				continue
			}
			if err := state.fs.MkdirAll(abs(a), 0o755); err != nil {
				return fmt.Errorf("mkdir: %w", err)
			}
		}
		return nil
	case "rm":
		for _, a := range argv[1:] {
			if strings.HasPrefix(a, "-") {
				continue
			}
			// -f semantics: missing targets are fine, anything else is not.
			if err := state.fs.Remove(abs(a)); err != nil && !errors.Is(err, fsim.ErrNotExist) {
				return fmt.Errorf("rm: %w", err)
			}
		}
		return nil
	case "cp":
		return b.cpBuiltin(state, argv[1:])
	case "mv":
		if err := b.cpBuiltin(state, argv[1:]); err != nil {
			return err
		}
		return state.fs.Remove(abs(argv[len(argv)-2]))
	case "touch":
		for _, a := range argv[1:] {
			if !state.fs.Exists(abs(a)) {
				state.fs.WriteFile(abs(a), nil, 0o644)
			}
		}
		return nil
	case "ln":
		args := argv[1:]
		if len(args) > 0 && args[0] == "-s" {
			args = args[1:]
		}
		if len(args) != 2 {
			return fmt.Errorf("ln: want target and link name")
		}
		state.fs.Symlink(args[0], abs(args[1]))
		return nil
	case "echo", "true", ":":
		return nil
	case "apt-get", "apt":
		return b.aptBuiltin(state, argv[1:])
	case "make":
		return b.makeBuiltin(state, argv[1:])
	case "ldconfig":
		return nil
	default:
		if state.runner.CanRun(argv) {
			state.runner.Cwd = state.cwd
			// The hijacker sees the command after response-file expansion
			// (the real hijacker sits past the shell, where @files are the
			// compiler's to read — expanding first keeps the recorded
			// models self-contained).
			expanded, err := state.runner.ExpandResponseFiles(argv)
			if err != nil {
				return err
			}
			if b.Recorder != nil {
				b.Recorder.Record(expanded, state.cwd, state.name, state.env)
			}
			return state.runner.Run(expanded)
		}
		return fmt.Errorf("%s: command not found", argv[0])
	}
}

// cpBuiltin copies files or directory subtrees.
func (b *Builder) cpBuiltin(state *stageState, args []string) error {
	var paths []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			continue
		}
		paths = append(paths, a)
	}
	if len(paths) < 2 {
		return fmt.Errorf("cp: want source(s) and destination")
	}
	dst := paths[len(paths)-1]
	return copyInto(state.fs, state.fs, state.cwd, paths[:len(paths)-1], dst)
}

// makeBuiltin runs `make [targets]` through the makesim interpreter: the
// Makefile in the working directory drives the build, and every recipe
// command flows back through execCommand — so the hijacker records the
// compiler invocations exactly as it would with the real execvp shim.
func (b *Builder) makeBuiltin(state *stageState, args []string) error {
	mkPath := "Makefile"
	var targets []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-f" && i+1 < len(args):
			mkPath = args[i+1]
			i++
		case a == "-j":
			if i+1 < len(args) && !strings.HasPrefix(args[i+1], "-") {
				i++ // parallelism level: accepted, advisory
			}
		case strings.HasPrefix(a, "-j"):
			// -jN: accepted, advisory.
		case strings.HasPrefix(a, "-"):
			return fmt.Errorf("make: unsupported option %s", a)
		case strings.Contains(a, "="):
			// Command-line variable override, highest precedence.
			targets = append(targets, a)
		default:
			targets = append(targets, a)
		}
	}
	abs := mkPath
	if !strings.HasPrefix(abs, "/") {
		abs = fsim.Clean(path.Join(state.cwd, mkPath))
	}
	data, err := state.fs.ReadFile(abs)
	if err != nil {
		if mkPath == "Makefile" {
			alt := fsim.Clean(path.Join(state.cwd, "makefile"))
			if d2, err2 := state.fs.ReadFile(alt); err2 == nil {
				data = d2
				err = nil
			}
		}
		if err != nil {
			return fmt.Errorf("make: %s: no such file or directory", mkPath)
		}
	}
	mf, err := makesim.Parse(string(data))
	if err != nil {
		return err
	}
	// Split overrides out of the target list.
	var pureTargets []string
	for _, t := range targets {
		if k, v, ok := strings.Cut(t, "="); ok && !strings.ContainsAny(k, "/%") {
			mf.Vars[k] = v
			continue
		}
		pureTargets = append(pureTargets, t)
	}
	runner := makesim.NewRunner(mf, state.fs, state.cwd, func(argv []string) error {
		return b.execCommand(state, argv)
	})
	if len(pureTargets) == 0 {
		return runner.Build("")
	}
	for _, t := range pureTargets {
		if err := runner.Build(t); err != nil {
			return err
		}
	}
	return nil
}

// aptBuiltin implements `apt-get update` and `apt-get install -y pkgs...`.
func (b *Builder) aptBuiltin(state *stageState, args []string) error {
	var words []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			continue
		}
		words = append(words, a)
	}
	if len(words) == 0 {
		return fmt.Errorf("apt-get: missing subcommand")
	}
	switch words[0] {
	case "update", "clean", "autoremove", "upgrade":
		return nil
	case "install":
		if b.AptIndex == nil {
			return fmt.Errorf("apt-get install: no package repository configured")
		}
		db, err := dpkg.Load(state.fs)
		if err != nil {
			return err
		}
		for _, name := range words[1:] {
			// apt's name=version pinning syntax.
			dep := dpkg.Dependency{Name: name}
			if n, v, ok := strings.Cut(name, "="); ok {
				dep = dpkg.Dependency{Name: n, Op: dpkg.OpEQ, Version: dpkg.Version(v)}
			} else {
				parsed, err := dpkg.ParseDependency(name)
				if err != nil {
					return err
				}
				dep = parsed
			}
			p, ok := b.AptIndex.Find(dep)
			if !ok {
				return fmt.Errorf("apt-get: unable to locate package %s", name)
			}
			if err := db.InstallWithDeps(state.fs, b.AptIndex, p); err != nil {
				return err
			}
		}
		return nil
	case "remove", "purge":
		db, err := dpkg.Load(state.fs)
		if err != nil {
			return err
		}
		for _, name := range words[1:] {
			if err := db.Remove(state.fs, name); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("apt-get: unknown subcommand %q", words[0])
	}
}

// execCopy implements COPY [--from=ref] src... dst.
func (b *Builder) execCopy(state *stageState, args []string) error {
	src := b.Context
	rest := args
	if len(rest) > 0 && strings.HasPrefix(rest[0], "--from=") {
		ref := strings.TrimPrefix(rest[0], "--from=")
		rest = rest[1:]
		// --from can name an earlier stage (resolved by the caller keeping
		// states) or a repo image; Build wires stages into the repo map, so
		// resolve against the builder's stage registry first.
		st, ok := b.stageLookup[ref]
		if ok {
			src = st.fs
		} else {
			img, err := b.Repo.LoadByTag(ref)
			if err != nil {
				return fmt.Errorf("COPY --from=%s: %w", ref, err)
			}
			flat, err := img.Flatten()
			if err != nil {
				return err
			}
			src = flat
		}
	}
	if src == nil {
		return fmt.Errorf("COPY: no build context")
	}
	if len(rest) < 2 {
		return fmt.Errorf("COPY: want source(s) and destination")
	}
	expanded := make([]string, len(rest))
	for i, a := range rest {
		expanded[i] = expand(a, state.env)
	}
	dst := expanded[len(expanded)-1]
	return copyInto(src, state.fs, state.cwd, expanded[:len(expanded)-1], dst)
}

// copyInto copies each src (file or directory subtree, relative paths
// resolved against cwd in dstFS, absolute in srcFS) to dst.
func copyInto(srcFS, dstFS *fsim.FS, cwd string, srcs []string, dst string) error {
	absDst := dst
	if !strings.HasPrefix(dst, "/") {
		absDst = path.Join(cwd, dst)
	}
	absDst = fsim.Clean(absDst)
	dstIsDir := strings.HasSuffix(dst, "/") || len(srcs) > 1
	if st, err := dstFS.Stat(absDst); err == nil && st.Type == fsim.TypeDir {
		dstIsDir = true
	}
	for _, src := range srcs {
		absSrc := fsim.Clean(src)
		st, err := srcFS.Stat(absSrc)
		if err != nil {
			// Try a glob.
			matches := srcFS.Glob(absSrc)
			if len(matches) == 0 {
				return fmt.Errorf("copy: %s: no such file or directory", src)
			}
			if err := copyInto(srcFS, dstFS, cwd, matches, dst); err != nil {
				return err
			}
			continue
		}
		switch st.Type {
		case fsim.TypeDir:
			// Copy the subtree under dst.
			prefix := absSrc
			err := srcFS.Walk(func(f *fsim.File) error {
				if f.Path != prefix && !strings.HasPrefix(f.Path, prefix+"/") {
					return nil
				}
				rel := strings.TrimPrefix(f.Path, prefix)
				target := fsim.Clean(absDst + rel)
				c := f.Clone()
				c.Path = target
				dstFS.Add(c)
				return nil
			})
			if err != nil {
				return err
			}
		default:
			target := absDst
			if dstIsDir {
				target = fsim.Clean(path.Join(absDst, path.Base(absSrc)))
			}
			c := st.Clone()
			c.Path = target
			dstFS.Add(c)
		}
	}
	return nil
}
