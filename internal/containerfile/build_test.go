package containerfile

import (
	"strings"
	"testing"

	"comtainer/internal/dpkg"
	"comtainer/internal/fsim"
	"comtainer/internal/hijack"
	"comtainer/internal/oci"
	"comtainer/internal/toolchain"
)

// makeBase writes a minimal ubuntu-like base image into repo under tag,
// with the given role label.
func makeBase(t *testing.T, repo *oci.Repository, tag, role string) {
	t.Helper()
	fs := fsim.New()
	fs.WriteFile("/etc/os-release", []byte("ID=ubuntu\nVERSION_ID=24.04\n"), 0o644)
	fs.WriteFile("/bin/sh", []byte("#!shell"), 0o755)
	libc := toolchain.LibraryArtifact("libc", "gnu", toolchain.ISAx86, 1.0, false)
	fs.WriteFile("/usr/lib/libc.so.6", libc.Encode(), 0o644)
	fs.Symlink("libc.so.6", "/usr/lib/libc.so")
	libm := toolchain.LibraryArtifact("libm", "gnu", toolchain.ISAx86, 1.0, false)
	fs.WriteFile("/usr/lib/libm.so.6", libm.Encode(), 0o644)
	fs.Symlink("libm.so.6", "/usr/lib/libm.so")
	cfg := oci.ImageConfig{
		Architecture: "amd64",
		OS:           "linux",
		Config: oci.ExecConfig{
			Env:    []string{"PATH=/usr/bin:/bin"},
			Labels: map[string]string{},
		},
	}
	if role != "" {
		cfg.Config.Labels[RoleLabel] = role
	}
	desc, err := oci.WriteImage(repo.Store, cfg, []*fsim.FS{fs})
	if err != nil {
		t.Fatal(err)
	}
	repo.Tag(tag, desc)
}

// testContext returns a build context with a small C project.
func testContext() *fsim.FS {
	ctx := fsim.New()
	ctx.WriteFile("/src/main.c", []byte("int main(){return 0;}\n"), 0o644)
	ctx.WriteFile("/src/util.c", []byte("double sq(double x){return x*x;}\n"), 0o644)
	return ctx
}

func newBuilder(t *testing.T) *Builder {
	t.Helper()
	repo := oci.NewRepository()
	makeBase(t, repo, "ubuntu:24.04", "")
	makeBase(t, repo, "comt:env", RoleEnv)
	makeBase(t, repo, "comt:base", RoleBase)
	return &Builder{
		Repo:     repo,
		Context:  testContext(),
		Registry: toolchain.GenericRegistry(toolchain.ISAx86),
		Recorder: hijack.NewRecorder(),
	}
}

const twoStage = `
# Two-stage HPC application build (paper Figure 2).
FROM comt:env AS build
COPY /src /app/src
WORKDIR /app/src
RUN gcc -O2 -c main.c && gcc -O2 -c util.c
RUN gcc main.o util.o -lm -o /app/bin/demo

FROM comt:base AS dist
COPY --from=build /app/bin/demo /app/demo
ENV APP_HOME=/app
ENTRYPOINT ["/app/demo"]
`

func TestParseTwoStage(t *testing.T) {
	cf, err := Parse(twoStage)
	if err != nil {
		t.Fatal(err)
	}
	if len(cf.Stages) != 2 {
		t.Fatalf("stages = %d", len(cf.Stages))
	}
	if cf.Stages[0].Name != "build" || cf.Stages[0].BaseRef != "comt:env" {
		t.Errorf("stage 0 = %+v", cf.Stages[0])
	}
	if cf.Stages[1].Name != "dist" {
		t.Errorf("stage 1 name = %q", cf.Stages[1].Name)
	}
	if _, ok := cf.StageByName("build"); !ok {
		t.Error("StageByName(build) failed")
	}
	if _, ok := cf.StageByName("0"); !ok {
		t.Error("StageByName(0) failed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"RUN echo hi\n",                // before FROM
		"FROM a AS b AS c\n",           // malformed FROM
		"BOGUS something\n",            // unknown instruction
		"",                             // no FROM at all
		"FROM x\nFLY me to the moon\n", // unknown instruction mid-file
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) succeeded", text)
		}
	}
}

func TestParseContinuations(t *testing.T) {
	cf, err := Parse("FROM x\nRUN gcc -c a.c \\\n    -o a.o\n")
	if err != nil {
		t.Fatal(err)
	}
	raw := cf.Stages[0].Instructions[0].Raw
	if !strings.Contains(raw, "-o a.o") {
		t.Errorf("continuation lost: %q", raw)
	}
}

func TestBuildTwoStage(t *testing.T) {
	b := newBuilder(t)
	cf, err := Parse(twoStage)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := b.Build(cf, "dist")
	if err != nil {
		t.Fatal(err)
	}
	img, err := oci.LoadImage(b.Repo.Store, desc)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	// dist has the binary but not the sources or objects.
	if !flat.Exists("/app/demo") {
		t.Error("/app/demo missing from dist")
	}
	if flat.Exists("/app/src/main.c") || flat.Exists("/app/src/main.o") {
		t.Error("build intermediates leaked into dist")
	}
	if got := img.Config.Config.Entrypoint; len(got) != 1 || got[0] != "/app/demo" {
		t.Errorf("Entrypoint = %v", got)
	}
	found := false
	for _, e := range img.Config.Config.Env {
		if e == "APP_HOME=/app" {
			found = true
		}
	}
	if !found {
		t.Errorf("ENV not in config: %v", img.Config.Config.Env)
	}
	// The binary is a linked artifact.
	data, err := flat.ReadFile("/app/demo")
	if err != nil {
		t.Fatal(err)
	}
	art, err := toolchain.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if art.Kind != toolchain.KindExecutable || len(art.Sources) != 2 {
		t.Errorf("artifact = %+v", art)
	}
}

func TestHijackerRecordsInEnvStage(t *testing.T) {
	b := newBuilder(t)
	cf, err := Parse(twoStage)
	if err != nil {
		t.Fatal(err)
	}
	buildDesc, err := b.Build(cf, "build")
	if err != nil {
		t.Fatal(err)
	}
	if b.Recorder.Len() != 3 {
		t.Errorf("recorded %d invocations, want 3", b.Recorder.Len())
	}
	// The raw log is inside the build image because its base is an Env image.
	img, err := oci.LoadImage(b.Repo.Store, buildDesc)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	invs, err := hijack.Load(flat)
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 3 {
		t.Fatalf("log has %d invocations", len(invs))
	}
	if invs[0].Cwd != "/app/src" || invs[0].Tool() != "gcc" {
		t.Errorf("first invocation = %+v", invs[0])
	}
}

func TestBuildFailsOnCompileError(t *testing.T) {
	b := newBuilder(t)
	cf, err := Parse("FROM comt:env\nRUN gcc -c /missing.c\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(cf, ""); err == nil {
		t.Error("build with missing source succeeded")
	}
}

func TestBuildUnknownCommand(t *testing.T) {
	b := newBuilder(t)
	cf, _ := Parse("FROM comt:env\nRUN cmake --build .\n")
	if _, err := b.Build(cf, ""); err == nil || !strings.Contains(err.Error(), "command not found") {
		t.Errorf("err = %v", err)
	}
}

func TestEnvAndWorkdirAndShellBuiltins(t *testing.T) {
	b := newBuilder(t)
	cf, err := Parse(`FROM comt:env
ENV CC=gcc COPTS=-O3
COPY /src /work/src
WORKDIR /work/src
RUN mkdir -p /out && $CC $COPTS -c main.c -o /out/main.o
RUN cp /out/main.o /out/copy.o && mv /out/copy.o /out/moved.o && rm /out/main.o
RUN ln -s /out/moved.o /out/alias.o && touch /out/stamp
`)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := b.Build(cf, "")
	if err != nil {
		t.Fatal(err)
	}
	img, _ := oci.LoadImage(b.Repo.Store, desc)
	flat, _ := img.Flatten()
	if flat.Exists("/out/main.o") || !flat.Exists("/out/moved.o") {
		t.Error("cp/mv/rm semantics wrong")
	}
	if !flat.Exists("/out/stamp") {
		t.Error("touch failed")
	}
	if p, err := flat.ResolveSymlink("/out/alias.o"); err != nil || p != "/out/moved.o" {
		t.Errorf("symlink resolve = %q, %v", p, err)
	}
	// The compiled object reflects the expanded $COPTS.
	data, _ := flat.ReadFile("/out/moved.o")
	art, err := toolchain.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if art.OptLevel != "3" {
		t.Errorf("OptLevel = %q, want 3 (from $COPTS)", art.OptLevel)
	}
}

func TestAptGetInstall(t *testing.T) {
	b := newBuilder(t)
	idx := dpkg.NewIndex()
	idx.Add(&dpkg.Package{
		Name: "libopenblas", Version: "0.3.26-1", Architecture: "amd64",
		Files: []dpkg.PackageFile{{Path: "/usr/lib/libblas.so", Data: toolchain.LibraryArtifact("libblas", "gnu", toolchain.ISAx86, 1.0, false).Encode(), Mode: 0o644}},
	})
	b.AptIndex = idx
	cf, err := Parse(`FROM comt:env
RUN apt-get update && apt-get install -y libopenblas
COPY /src /s
WORKDIR /s
RUN gcc main.c -lblas -o app
`)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := b.Build(cf, "")
	if err != nil {
		t.Fatal(err)
	}
	img, _ := oci.LoadImage(b.Repo.Store, desc)
	flat, _ := img.Flatten()
	db, err := dpkg.Load(flat)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Installed("libopenblas"); !ok {
		t.Error("package not recorded in dpkg db")
	}
	data, _ := flat.ReadFile("/s/app")
	art, _ := toolchain.Decode(data)
	hasBlas := false
	for _, l := range art.DynamicLibs {
		if strings.Contains(l, "blas") {
			hasBlas = true
		}
	}
	if !hasBlas {
		t.Errorf("app not linked against blas: %v", art.DynamicLibs)
	}
}

func TestAptGetVersionPinning(t *testing.T) {
	b := newBuilder(t)
	idx := dpkg.NewIndex()
	for _, v := range []string{"0.3.25-1", "0.3.26-1"} {
		idx.Add(&dpkg.Package{
			Name: "libopenblas", Version: dpkg.Version(v), Architecture: "amd64",
			Files: []dpkg.PackageFile{{Path: "/usr/lib/libblas.so." + v, Data: []byte(v), Mode: 0o644}},
		})
	}
	b.AptIndex = idx
	cf, err := Parse("FROM comt:env\nRUN apt-get install -y libopenblas=0.3.25-1\n")
	if err != nil {
		t.Fatal(err)
	}
	desc, err := b.Build(cf, "")
	if err != nil {
		t.Fatal(err)
	}
	img, _ := oci.LoadImage(b.Repo.Store, desc)
	flat, _ := img.Flatten()
	db, err := dpkg.Load(flat)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := db.Installed("libopenblas")
	if !ok || p.Version != "0.3.25-1" {
		t.Errorf("pinned install = %+v, %v", p, ok)
	}
	// A pin to a missing version fails.
	cf, _ = Parse("FROM comt:env\nRUN apt-get install -y libopenblas=9.9-9\n")
	if _, err := b.Build(cf, ""); err == nil {
		t.Error("missing pinned version installed")
	}
}

func TestAptGetMissingPackage(t *testing.T) {
	b := newBuilder(t)
	b.AptIndex = dpkg.NewIndex()
	cf, _ := Parse("FROM comt:env\nRUN apt-get install -y ghost-package\n")
	if _, err := b.Build(cf, ""); err == nil || !strings.Contains(err.Error(), "unable to locate") {
		t.Errorf("err = %v", err)
	}
}

func TestCopyFromRepoImage(t *testing.T) {
	b := newBuilder(t)
	// Prepare an image in the repo holding a data file.
	dataFS := fsim.New()
	dataFS.WriteFile("/data/input.dat", []byte("payload"), 0o644)
	desc, err := oci.WriteImage(b.Repo.Store, oci.ImageConfig{Architecture: "amd64", OS: "linux"}, []*fsim.FS{dataFS})
	if err != nil {
		t.Fatal(err)
	}
	b.Repo.Tag("datasets:v1", desc)
	cf, _ := Parse("FROM comt:base\nCOPY --from=datasets:v1 /data/input.dat /input.dat\n")
	out, err := b.Build(cf, "")
	if err != nil {
		t.Fatal(err)
	}
	img, _ := oci.LoadImage(b.Repo.Store, out)
	flat, _ := img.Flatten()
	if got, _ := flat.ReadFile("/input.dat"); string(got) != "payload" {
		t.Errorf("copied content = %q", got)
	}
}

func TestRenderRoundTrip(t *testing.T) {
	cf, err := Parse(twoStage)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(cf.Render())
	if err != nil {
		t.Fatalf("rendered text does not reparse: %v\n%s", err, cf.Render())
	}
	if len(again.Stages) != len(cf.Stages) {
		t.Fatal("stage count changed")
	}
	for i := range cf.Stages {
		if len(again.Stages[i].Instructions) != len(cf.Stages[i].Instructions) {
			t.Errorf("stage %d instruction count changed", i)
		}
	}
}

func TestFromPriorStage(t *testing.T) {
	b := newBuilder(t)
	cf, err := Parse(`FROM comt:env AS one
RUN mkdir /made-in-one

FROM one AS two
RUN touch /made-in-one/mark
`)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := b.Build(cf, "two")
	if err != nil {
		t.Fatal(err)
	}
	img, _ := oci.LoadImage(b.Repo.Store, desc)
	flat, _ := img.Flatten()
	if !flat.Exists("/made-in-one/mark") {
		t.Error("state from prior stage missing")
	}
}
